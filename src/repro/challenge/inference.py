"""The Graph Challenge sparse DNN inference engine.

The reference recurrence (Kepner et al., "Sparse Deep Neural Network Graph
Challenge") is, for activation matrix ``Y`` with one row per input sample:

    Z = Y W_l + B_l          (bias broadcast to active rows)
    Y = min(max(Z, 0), threshold)

after the last layer, the *categories* are the rows of ``Y`` with any
positive entry.

Activation storage policy
-------------------------

At official challenge scale (1024-65536 neurons, 120+ layers) the
activations themselves go sparse after the first thresholded layers, and
a dense ``(batch, neurons)`` buffer becomes the memory bottleneck.  The
engine therefore threads an :class:`ActivationBatch` -- either
:class:`DenseActivations` (a float64 array, advanced by the backend's
SpMM) or :class:`SparseActivations` (a CSR matrix, advanced by the
backend's fused ``sparse_layer_step`` SpGEMM kernel) -- through the
recurrence, and an :class:`ActivationPolicy` decides the representation
before every layer:

* ``dense``  -- always the dense SpMM path (the pre-policy behaviour);
* ``sparse`` -- always CSR activations end-to-end (requires non-positive
  biases, which the challenge networks satisfy);
* ``auto``   -- per-layer density tracking with a configurable crossover:
  batches smaller than ``min_sparse_elements`` or denser than
  ``crossover_density`` keep the fast dense SpMM, large thresholded
  batches switch to SpGEMM.

Every :class:`InferenceResult` records the per-layer representation,
density, and the peak activation ``nnz`` observed, so the memory win of
the sparse policy is directly reportable (the dense equivalent is always
``batch * neurons`` stored elements).

:class:`InferenceEngine` is the production path: it binds a network to a
sparse-kernel backend (see :mod:`repro.backends`), precomputes every
layer's transposed weight matrix **once** at construction (the dense
recurrence computes ``Y W`` as ``(W^T Y^T)^T``), and runs the recurrence
single-shot, chunked, or fanned out across processes.
:func:`streaming_inference` runs the same recurrence over a *lazily
produced* sequence of ``(weight, bias)`` layers (see
:func:`repro.challenge.io.iter_challenge_layers`), so a network far
larger than memory never needs all layers resident before the first
chunk runs.

Both are thin drivers over the **staged pipeline**
(:func:`repro.challenge.pipeline.run_pipeline` -- load -> compute ->
checkpoint): there is exactly one recurrence implementation, and the
checkpoint/resume + background-prefetch machinery of ``repro challenge
run`` lives in :mod:`repro.challenge.pipeline`.

:func:`sparse_dnn_inference` keeps the original functional API on top of
the engine; engines are cached per ``(network, backend)`` so repeated
calls (and :func:`layer_activation_profile`) reuse the transposed
weights.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.backends import resolve_backend
from repro.backends.base import SparseBackend
from repro.backends.fused import row_sums
from repro.challenge.generator import ChallengeNetwork
from repro.errors import ShapeError, ValidationError
from repro.sparse.csr import CSRMatrix

DENSE = "dense"
SPARSE = "sparse"
AUTO = "auto"
_MODES = (AUTO, DENSE, SPARSE)


@dataclass(frozen=True)
class ActivationPolicy:
    """When to hold the activation batch dense vs. sparse (CSR).

    Attributes
    ----------
    mode:
        ``"dense"`` / ``"sparse"`` force one representation end-to-end;
        ``"auto"`` decides per layer from the density tracked after the
        previous step.
    crossover_density:
        In ``auto`` mode, switch to CSR activations when the batch
        density drops to this fraction or below.  SpGEMM work scales with
        activation nnz, dense SpMM with ``batch * neurons``; the default
        crossover of 10% is conservative in favour of the dense kernels.
    min_sparse_elements:
        In ``auto`` mode, batches with fewer than this many dense
        elements (``batch * neurons``) never switch: at small sizes the
        dense SpMM path is faster regardless of density.
    """

    mode: str = AUTO
    crossover_density: float = 0.1
    min_sparse_elements: int = 4096

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValidationError(
                f"activation mode must be one of {_MODES}, got {self.mode!r}"
            )
        if not 0.0 < self.crossover_density <= 1.0:
            raise ValidationError(
                f"crossover_density must be in (0, 1], got {self.crossover_density}"
            )
        if self.min_sparse_elements < 0:
            raise ValidationError(
                f"min_sparse_elements must be >= 0, got {self.min_sparse_elements}"
            )

    @classmethod
    def resolve(cls, value: "str | ActivationPolicy | None") -> "ActivationPolicy":
        """Map the ubiquitous ``activations=`` keyword to a policy instance."""
        if value is None:
            return cls()
        if isinstance(value, ActivationPolicy):
            return value
        return cls(mode=str(value))

    def pick(self, *, density: float, elements: int) -> str:
        """The representation for the next layer given the current batch state."""
        if self.mode != AUTO:
            return self.mode
        if elements >= self.min_sparse_elements and density <= self.crossover_density:
            return SPARSE
        return DENSE


# --------------------------------------------------------------------------- #
# activation batch representations
# --------------------------------------------------------------------------- #
class DenseActivations:
    """A dense ``(batch, neurons)`` activation buffer (the SpMM path)."""

    kind = DENSE
    __slots__ = ("array", "_nnz")

    def __init__(self, array: np.ndarray) -> None:
        self.array = array
        self._nnz: int | None = None

    @property
    def rows(self) -> int:
        return self.array.shape[0]

    @property
    def neurons(self) -> int:
        return self.array.shape[1]

    @property
    def elements(self) -> int:
        return int(self.array.size)

    def nnz(self) -> int:
        if self._nnz is None:
            self._nnz = int(np.count_nonzero(self.array))
        return self._nnz

    def density(self) -> float:
        return self.nnz() / self.elements if self.elements else 0.0

    def step(
        self,
        weight: CSRMatrix | None,
        weight_t: CSRMatrix | None,
        bias: np.ndarray,
        threshold: float,
        backend: SparseBackend,
    ) -> "DenseActivations":
        if weight_t is None:
            weight_t = backend.transpose(weight)
        return DenseActivations(
            _dense_layer_step(self.array, weight_t, bias, threshold, backend)
        )

    def to_dense(self) -> "DenseActivations":
        return self

    def to_sparse(self) -> "SparseActivations":
        return SparseActivations(CSRMatrix.from_dense(self.array))

    def to_array(self) -> np.ndarray:
        return self.array

    def categories(self) -> np.ndarray:
        return np.flatnonzero(self.array.sum(axis=1) > 0)


class SparseActivations:
    """A CSR activation batch (the fused SpGEMM path)."""

    kind = SPARSE
    __slots__ = ("matrix",)

    def __init__(self, matrix: CSRMatrix) -> None:
        self.matrix = matrix

    @property
    def rows(self) -> int:
        return self.matrix.shape[0]

    @property
    def neurons(self) -> int:
        return self.matrix.shape[1]

    @property
    def elements(self) -> int:
        return self.matrix.shape[0] * self.matrix.shape[1]

    def nnz(self) -> int:
        return self.matrix.nnz

    def density(self) -> float:
        return self.matrix.density

    def step(
        self,
        weight: CSRMatrix | None,
        weight_t: CSRMatrix | None,
        bias: np.ndarray,
        threshold: float,
        backend: SparseBackend,
    ) -> "SparseActivations":
        kernel = getattr(backend, "sparse_layer_step", None)
        if kernel is not None:
            return SparseActivations(kernel(self.matrix, weight, bias, threshold))
        from repro.sparse.ops import sparse_layer_step

        return SparseActivations(
            sparse_layer_step(self.matrix, weight, bias, threshold, backend=backend)
        )

    def to_dense(self) -> DenseActivations:
        return DenseActivations(self.matrix.to_dense())

    def to_sparse(self) -> "SparseActivations":
        return self

    def to_array(self) -> np.ndarray:
        return self.matrix.to_dense()

    def categories(self) -> np.ndarray:
        if self.matrix.nnz == 0:
            return np.empty(0, dtype=np.int64)
        return np.flatnonzero(row_sums(self.matrix) > 0)


ActivationBatch = DenseActivations | SparseActivations


@dataclass
class InferenceResult:
    """Outcome of a sparse DNN inference run."""

    activations: np.ndarray
    categories: np.ndarray
    layer_seconds: list[float] = field(default_factory=list)
    edges_traversed: int = 0
    backend: str = ""
    activation_policy: str = ""
    layer_modes: list[str] = field(default_factory=list)
    layer_density: list[float] = field(default_factory=list)
    peak_activation_nnz: int = 0

    @property
    def total_seconds(self) -> float:
        """Total inference wall-clock time across layers."""
        return float(sum(self.layer_seconds))

    @property
    def edges_per_second(self) -> float:
        """The Graph Challenge throughput figure of merit (edges / second)."""
        total = self.total_seconds
        return self.edges_traversed / total if total > 0 else float("inf")


def _dense_layer_step(
    y: np.ndarray,
    weight_t,
    bias: np.ndarray,
    threshold: float,
    backend: SparseBackend,
) -> np.ndarray:
    """One dense layer: ``min(max(Y W + b, 0), threshold)`` via SpMM.

    ``weight_t`` is the pre-transposed weight matrix (``Y W`` is computed
    as ``(W^T Y^T)^T``).  The bias is only added to rows that have any
    active input, matching the GraphBLAS reference implementation (bias
    enters through the semiring on existing entries, so fully-inactive
    samples stay inactive).
    """
    z = backend.spmm(weight_t, y.T).T
    active_rows = y.sum(axis=1) > 0
    z[active_rows] += bias
    np.maximum(z, 0.0, out=z)
    np.minimum(z, threshold, out=z)
    return z


# retained name of the pre-policy kernel (external callers / pickles)
_layer_step = _dense_layer_step


class InferenceEngine:
    """A network bound to a backend, ready for repeated batched inference.

    Parameters
    ----------
    network:
        The :class:`~repro.challenge.generator.ChallengeNetwork` to run.
    backend:
        Backend name, instance, or ``None`` for the active backend.  The
        per-layer transposed weights are computed once here, with this
        backend, and reused by every subsequent call -- the hot loop never
        transposes.
    activations:
        Default :class:`ActivationPolicy` (or mode string) for runs that
        do not pass one explicitly.
    """

    def __init__(
        self,
        network: ChallengeNetwork,
        *,
        backend: str | SparseBackend | None = None,
        activations: str | ActivationPolicy = AUTO,
    ) -> None:
        self.network = network
        self.backend = resolve_backend(backend)
        self.policy = ActivationPolicy.resolve(activations)
        # x @ W computed as (W^T @ x^T)^T; pay the transposes once, here.
        self.weights_t = tuple(self.backend.transpose(w) for w in network.weights)
        self.edges_per_sample = int(sum(w.nnz for w in network.weights))
        # The sparse path adds bias only to stored entries; a positive bias
        # would break parity with the dense recurrence, so gate on it once.
        self.sparse_bias_ok = all(
            bool(np.all(b <= 0.0)) for b in network.biases
        )

    # ------------------------------------------------------------------ #
    def run(
        self,
        inputs: np.ndarray,
        *,
        chunk_size: int | None = None,
        workers: int | None = None,
        record_timing: bool = True,
        activations: str | ActivationPolicy | None = None,
        shards: int | None = None,
    ) -> InferenceResult:
        """Run the full recurrence over ``inputs`` (``(batch, neurons)``).

        ``chunk_size`` splits the batch into mini-batches of at most that
        many rows, bounding the peak size of intermediate activation
        buffers (each chunk's intermediates are released before the next
        chunk starts); the merged result is bit-identical to the
        single-shot path.  ``workers`` additionally fans the chunks out
        across a process pool (chunks are independent, so this is a pure
        batch partition); per-layer timings are not collected on the
        parallel path.  ``activations`` overrides the engine's default
        :class:`ActivationPolicy` for this call.  ``shards=K`` runs
        tensor-parallel over output-column ranges instead (see
        :mod:`repro.parallel.sharding`) -- in-process, single-shot, and
        bit-identical to the unsharded run; it composes with neither
        ``chunk_size`` nor ``workers``.
        """
        y = self._validate_inputs(inputs)
        policy = self._resolve_policy(activations)
        batch = y.shape[0]
        if chunk_size is not None and chunk_size < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
        if workers is not None and workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if shards is not None:
            if chunk_size is not None or workers is not None:
                raise ValidationError(
                    "shards (tensor-parallel) does not compose with "
                    "chunk_size/workers (batch-parallel); pick one axis"
                )
            from repro.parallel.sharding import ShardLayout

            layout = ShardLayout.balanced(self.network.neurons, shards)
            return self._run_block(
                y, record_timing=record_timing, policy=policy, layout=layout
            )
        if batch == 0:
            return self._run_block(y, record_timing=record_timing, policy=policy)
        if chunk_size is None:
            if workers is None or workers == 1:
                return self._run_block(y, record_timing=record_timing, policy=policy)
            # floor, not ceil: ceil(batch/workers) can yield fewer chunks
            # than workers (batch=9, workers=4 -> 3 chunks of 3), idling a
            # worker; floor gives at least `workers` chunks when batch
            # allows, and the pool queue balances the remainder
            chunk_size = max(1, batch // workers)
        if batch <= chunk_size:
            # a single chunk: run it in-process; fanning one task out to a
            # pool would only add spawn/pickle overhead
            return self._run_block(y, record_timing=record_timing, policy=policy)
        if workers is not None and workers > 1:
            return self._run_parallel(y, chunk_size, workers, policy)
        layer_seconds = [0.0] * self.network.num_layers
        activations_out: list[np.ndarray] = []
        categories: list[np.ndarray] = []
        peak_nnz = 0
        for offset, chunk_result in self.stream(
            y, chunk_size=chunk_size, record_timing=record_timing, activations=policy
        ):
            activations_out.append(chunk_result.activations)
            categories.append(chunk_result.categories + offset)
            peak_nnz = max(peak_nnz, chunk_result.peak_activation_nnz)
            for i, seconds in enumerate(chunk_result.layer_seconds):
                layer_seconds[i] += seconds
        return self._merged_result(
            activations_out,
            categories,
            layer_seconds if record_timing else [],
            y.shape[0],
            policy,
            peak_nnz,
        )

    def stream(
        self,
        inputs: np.ndarray,
        *,
        chunk_size: int,
        record_timing: bool = False,
        activations: str | ActivationPolicy | None = None,
    ) -> Iterator[tuple[int, InferenceResult]]:
        """Yield ``(row_offset, result)`` per mini-batch of ``chunk_size`` rows.

        The streaming form keeps only one chunk's activations alive at a
        time, so arbitrarily large batches run in bounded memory when the
        caller consumes (or discards) each chunk before requesting the
        next.  Chunk category indices are chunk-local; add ``row_offset``
        to place them in the full batch.
        """
        y = self._validate_inputs(inputs)
        policy = self._resolve_policy(activations)
        if chunk_size < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
        for offset in range(0, y.shape[0], chunk_size):
            chunk = y[offset : offset + chunk_size]
            yield offset, self._run_block(
                chunk, record_timing=record_timing, policy=policy
            )

    def layer_profile(self, inputs: np.ndarray) -> list[float]:
        """Fraction of nonzero activations after every layer (diagnostic curve).

        The challenge instances are tuned so activations neither die out
        nor saturate; this profile is the quickest way to confirm a
        generated instance behaves like the real ones.
        """
        y = self._validate_inputs(inputs)
        profile = []
        for weight_t, bias in zip(self.weights_t, self.network.biases):
            y = _dense_layer_step(y, weight_t, bias, self.network.threshold, self.backend)
            profile.append(float(np.count_nonzero(y) / y.size))
        return profile

    # ------------------------------------------------------------------ #
    def _validate_inputs(self, inputs: np.ndarray) -> np.ndarray:
        y = np.asarray(inputs, dtype=np.float64)
        if y.ndim != 2 or y.shape[1] != self.network.neurons:
            raise ShapeError(
                f"inputs must have shape (batch, {self.network.neurons}), got {y.shape}"
            )
        return y

    def _resolve_policy(
        self, activations: str | ActivationPolicy | None
    ) -> ActivationPolicy:
        policy = self.policy if activations is None else ActivationPolicy.resolve(activations)
        if policy.mode == SPARSE and not self.sparse_bias_ok:
            raise ValidationError(
                "sparse activation policy requires non-positive biases; "
                "this network has positive bias entries -- use "
                "activations='dense' or 'auto'"
            )
        return policy

    def _layers(self) -> Iterator[tuple[CSRMatrix, CSRMatrix, np.ndarray]]:
        return zip(self.network.weights, self.weights_t, self.network.biases)

    def _run_block(
        self,
        y: np.ndarray,
        *,
        record_timing: bool,
        policy: ActivationPolicy,
        layout=None,
    ) -> InferenceResult:
        # lazy: repro.challenge.pipeline imports this module at its top level
        from repro.challenge.pipeline import PipelineState, run_pipeline

        state = run_pipeline(
            self._layers(),
            PipelineState.initial(y),
            threshold=self.network.threshold,
            backend=self.backend,
            policy=policy,
            record_timing=record_timing,
            layout=layout,
        )
        return state.result(backend=self.backend.name, policy=policy)

    def _run_parallel(
        self, y: np.ndarray, chunk_size: int, workers: int, policy: ActivationPolicy
    ) -> InferenceResult:
        from repro.parallel.executor import parallel_map

        chunks = [y[offset : offset + chunk_size] for offset in range(0, y.shape[0], chunk_size)]
        # Ship only what the recurrence needs -- not the whole engine,
        # whose network would add the original weights and topology to
        # every task's pickle.  A dense-only policy never touches the
        # untransposed weights and a sparse-only policy never touches the
        # transposes, so drop whichever the policy cannot use.
        weights = None if policy.mode == DENSE else self.network.weights
        weights_t = None if policy.mode == SPARSE else self.weights_t
        model = (
            weights,
            weights_t,
            self.network.biases,
            self.network.threshold,
            self.backend,
            policy,
        )
        tasks = [(model, chunk) for chunk in chunks]
        outputs = parallel_map(
            _engine_chunk_worker, tasks, workers=workers, min_items_for_parallel=2
        )
        activations = [o[0] for o in outputs]
        categories = []
        offset = 0
        for chunk, (_, cats, _) in zip(chunks, outputs):
            categories.append(cats + offset)
            offset += chunk.shape[0]
        peak_nnz = max((o[2] for o in outputs), default=0)
        return self._merged_result(
            activations, categories, [], y.shape[0], policy, peak_nnz
        )

    def _merged_result(
        self,
        activations: list[np.ndarray],
        categories: list[np.ndarray],
        layer_seconds: list[float],
        batch: int,
        policy: ActivationPolicy,
        peak_nnz: int,
    ) -> InferenceResult:
        """Assemble per-chunk outputs (categories already offset) into one result.

        Chunks run one at a time (or one per worker), so the reported
        peak activation nnz is the maximum over chunks, not their sum;
        per-layer modes/densities are chunk-local and therefore omitted.
        """
        return InferenceResult(
            activations=np.concatenate(activations, axis=0)
            if activations
            else np.empty((0, self.network.neurons)),
            categories=np.concatenate(categories)
            if categories
            else np.empty(0, dtype=np.int64),
            layer_seconds=layer_seconds,
            edges_traversed=self.edges_per_sample * batch,
            backend=self.backend.name,
            activation_policy=policy.mode,
            peak_activation_nnz=peak_nnz,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"InferenceEngine(network={self.network!r}, "
            f"backend={self.backend.name!r})"
        )


def _engine_chunk_worker(task) -> tuple[np.ndarray, np.ndarray, int]:
    """Process-pool worker: run one chunk through the recurrence.

    The model bundle (weights, transposed weights, biases, threshold,
    backend, policy) rides along in the task tuple (CSR matrices,
    backends, and policies pickle cleanly) so the worker is independent
    of process start method and of module-level state.
    """
    from repro.challenge.pipeline import PipelineState, run_pipeline

    (weights, weights_t, biases, threshold, backend, policy), y = task
    n = len(biases)
    layers = zip(
        weights if weights is not None else (None,) * n,
        weights_t if weights_t is not None else (None,) * n,
        biases,
    )
    state = run_pipeline(
        layers,
        PipelineState.initial(y),
        threshold=threshold,
        backend=backend,
        policy=policy,
        record_timing=False,
    )
    return state.batch.to_array(), state.batch.categories(), state.peak_nnz


def streaming_inference(
    layers: Iterable[tuple[CSRMatrix, np.ndarray]],
    inputs: np.ndarray,
    *,
    threshold: float,
    backend: str | SparseBackend | None = None,
    activations: str | ActivationPolicy | None = None,
    record_timing: bool = True,
    prefetch: int = 0,
) -> InferenceResult:
    """Run the recurrence over a lazily produced sequence of layers.

    ``layers`` yields ``(weight, bias)`` pairs and is consumed one layer
    at a time, so pairing this with a generator source -- disk ingestion
    via :func:`repro.challenge.io.iter_challenge_layers`, or direct
    generation via
    :func:`repro.challenge.generator.iter_generate_challenge_layers`
    (generate -> infer with no disk and no resident network at all) --
    runs networks whose
    weights never need to be resident all at once.  On the dense path
    each layer's transpose is computed on the fly (and released with the
    layer); the sparse path needs no transposes at all.

    ``prefetch > 0`` pulls that many layers ahead on a background thread
    (bounded queue), overlapping the source's I/O with the compute
    kernels -- see :class:`repro.challenge.pipeline.LoadStage`.  This is
    a thin driver over :func:`repro.challenge.pipeline.run_pipeline`
    (the single recurrence implementation); for checkpoint/resume over a
    saved network use
    :func:`repro.challenge.pipeline.run_challenge_pipeline`.

    ``edges_traversed`` is accumulated from the weights actually seen, so
    the result is directly comparable with :meth:`InferenceEngine.run`.
    """
    from repro.challenge.pipeline import PipelineState, run_pipeline

    policy = ActivationPolicy.resolve(activations)
    impl = resolve_backend(backend)
    state = run_pipeline(
        layers,
        PipelineState.initial(inputs),
        threshold=float(threshold),
        backend=impl,
        policy=policy,
        record_timing=record_timing,
        prefetch=prefetch,
    )
    return state.result(backend=impl.name, policy=policy)


def engine_for(
    network: ChallengeNetwork, backend: str | SparseBackend | None = None
) -> InferenceEngine:
    """The cached engine of ``network`` for ``backend`` (built on first use).

    Engines are memoized on the network object itself (one per backend
    name), so their lifetime is tied to the network and repeated
    functional-API calls never pay the per-layer transposes again.
    """
    impl = resolve_backend(backend)
    engines: dict[str, InferenceEngine] | None = getattr(network, "_engines", None)
    if engines is None:
        engines = {}
        object.__setattr__(network, "_engines", engines)
    engine = engines.get(impl.name)
    if engine is None:
        engine = InferenceEngine(network, backend=impl)
        engines[impl.name] = engine
    return engine


def sparse_dnn_inference(
    network: ChallengeNetwork,
    inputs: np.ndarray,
    *,
    record_timing: bool = True,
    backend: str | SparseBackend | None = None,
    chunk_size: int | None = None,
    workers: int | None = None,
    activations: str | ActivationPolicy | None = None,
    shards: int | None = None,
) -> InferenceResult:
    """Run the challenge inference recurrence over all layers of ``network``.

    ``inputs`` is a dense ``(batch, neurons)`` activation matrix; under
    the ``sparse`` (or a triggered ``auto``) activation policy the engine
    converts it to CSR and keeps it sparse through the layers.

    This is the stable functional front end of :class:`InferenceEngine`;
    see :meth:`InferenceEngine.run` for the ``chunk_size`` / ``workers`` /
    ``activations`` / ``shards`` semantics.  ``edges_traversed`` is the
    Graph Challenge convention: total stored weight entries across
    layers, times the batch size.
    """
    return engine_for(network, backend).run(
        inputs,
        chunk_size=chunk_size,
        workers=workers,
        record_timing=record_timing,
        activations=activations,
        shards=shards,
    )


def infer_categories(network: ChallengeNetwork, inputs: np.ndarray) -> np.ndarray:
    """Convenience wrapper returning only the surviving category indices."""
    return sparse_dnn_inference(network, inputs, record_timing=False).categories


def layer_activation_profile(network: ChallengeNetwork, inputs: np.ndarray) -> list[float]:
    """Fraction of nonzero activations after every layer (diagnostic curve).

    Delegates to the cached :class:`InferenceEngine` of ``network`` so the
    transposed weights are shared with inference calls.  Raises
    :class:`ValidationError` on malformed inputs (the historical contract
    of this wrapper; the engine itself raises :class:`ShapeError`).
    """
    try:
        return engine_for(network).layer_profile(inputs)
    except ShapeError as exc:
        raise ValidationError(str(exc)) from None
