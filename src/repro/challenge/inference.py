"""The Graph Challenge sparse DNN inference kernel.

The reference recurrence (Kepner et al., "Sparse Deep Neural Network Graph
Challenge") is, for activation matrix ``Y`` with one row per input sample:

    Z = Y W_l + B_l          (bias broadcast to active rows)
    Y = min(max(Z, 0), threshold)

after the last layer, the *categories* are the rows of ``Y`` with any
positive entry.  This module implements the recurrence with either dense
or sparse activation storage and reports per-layer timing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.challenge.generator import ChallengeNetwork
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spmm, sparse_transpose


@dataclass
class InferenceResult:
    """Outcome of a sparse DNN inference run."""

    activations: np.ndarray
    categories: np.ndarray
    layer_seconds: list[float] = field(default_factory=list)
    edges_traversed: int = 0

    @property
    def total_seconds(self) -> float:
        """Total inference wall-clock time across layers."""
        return float(sum(self.layer_seconds))

    @property
    def edges_per_second(self) -> float:
        """The Graph Challenge throughput figure of merit (edges / second)."""
        total = self.total_seconds
        return self.edges_traversed / total if total > 0 else float("inf")


def sparse_dnn_inference(
    network: ChallengeNetwork,
    inputs: np.ndarray,
    *,
    record_timing: bool = True,
) -> InferenceResult:
    """Run the challenge inference recurrence over all layers of ``network``.

    ``inputs`` is a dense ``(batch, neurons)`` activation matrix (sparse
    batches are supported by the caller simply passing mostly-zero rows --
    the kernel exploits sparsity through the CSR weight matrices).
    """
    y = np.asarray(inputs, dtype=np.float64)
    if y.ndim != 2 or y.shape[1] != network.neurons:
        raise ShapeError(
            f"inputs must have shape (batch, {network.neurons}), got {y.shape}"
        )
    layer_seconds: list[float] = []
    edges = 0
    for weight, bias in zip(network.weights, network.biases):
        start = time.perf_counter() if record_timing else 0.0
        y = _layer_step(y, weight, bias, network.threshold)
        if record_timing:
            layer_seconds.append(time.perf_counter() - start)
        edges += weight.nnz
    categories = np.flatnonzero(y.sum(axis=1) > 0)
    return InferenceResult(
        activations=y,
        categories=categories,
        layer_seconds=layer_seconds,
        edges_traversed=edges * y.shape[0] if y.shape[0] else edges,
    )


def _layer_step(y: np.ndarray, weight: CSRMatrix, bias: np.ndarray, threshold: float) -> np.ndarray:
    """One layer of the recurrence: ``min(max(Y W + b, 0), threshold)``.

    The bias is only added to rows that have any active input, matching the
    GraphBLAS reference implementation (bias enters through the semiring on
    existing entries, so fully-inactive samples stay inactive).
    """
    z = spmm(sparse_transpose(weight), y.T).T
    active_rows = y.sum(axis=1) > 0
    z[active_rows] += bias
    np.maximum(z, 0.0, out=z)
    np.minimum(z, threshold, out=z)
    return z


def infer_categories(network: ChallengeNetwork, inputs: np.ndarray) -> np.ndarray:
    """Convenience wrapper returning only the surviving category indices."""
    return sparse_dnn_inference(network, inputs, record_timing=False).categories


def layer_activation_profile(network: ChallengeNetwork, inputs: np.ndarray) -> list[float]:
    """Fraction of nonzero activations after every layer (diagnostic curve).

    The challenge instances are tuned so activations neither die out nor
    saturate; this profile is the quickest way to confirm a generated
    instance behaves like the real ones.
    """
    y = np.asarray(inputs, dtype=np.float64)
    if y.ndim != 2 or y.shape[1] != network.neurons:
        raise ValidationError(
            f"inputs must have shape (batch, {network.neurons}), got {y.shape}"
        )
    profile = []
    for weight, bias in zip(network.weights, network.biases):
        y = _layer_step(y, weight, bias, network.threshold)
        profile.append(float(np.count_nonzero(y) / y.size))
    return profile
