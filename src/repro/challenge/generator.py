"""Generation of Graph Challenge style sparse DNN instances.

The official challenge networks have ``N`` neurons per layer
(1024/4096/16384/65536), 120-1920 layers, 32 connections per neuron, all
weights equal, and biases chosen so that a neuron with all inputs active
stays near the activation threshold.  They were produced with RadiX-Net;
we regenerate the same structure from this package's own generator:
neurons-per-layer is the RadiX-Net ``N'`` times a dense width, and the
per-layer connectivity is a mixed-radix submatrix repeated/cycled through
the requested depth.

Generation is fully sparse: the per-layer neuron shuffle is a CSR column
permutation (:func:`repro.sparse.ops.permute_columns`, O(nnz)), never a
dense ``N x N`` round-trip, so the *official* sizes are reachable.
:func:`iter_generate_challenge_layers` is the streaming form -- it yields
one ``(weight, bias)`` CSR layer at a time, ready to feed
:func:`repro.challenge.inference.streaming_inference` or
:func:`repro.challenge.io.save_challenge_layers` with only a single
layer's nnz ever resident.  :func:`generate_challenge_network` collects
the same stream into a fully materialized :class:`ChallengeNetwork` for
the laptop-scale workflows.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.backends.base import SparseBackend
from repro.errors import ValidationError
from repro.sparse.csr import CSRMatrix
from repro.topology.fnnt import FNNT
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class ChallengeNetwork:
    """A sparse DNN instance in the Graph Challenge sense.

    Attributes
    ----------
    topology:
        The :class:`FNNT` describing connectivity (all layers the same
        width ``neurons``).
    weights:
        Per-layer CSR weight matrices (same pattern as the topology's
        submatrices, constant value ``weight_value``).
    biases:
        Per-layer bias vectors.
    threshold:
        The ReLU clamp value (the challenge uses 32).
    """

    topology: FNNT
    weights: tuple[CSRMatrix, ...]
    biases: tuple[np.ndarray, ...]
    threshold: float

    @property
    def neurons(self) -> int:
        """Neurons per layer."""
        return self.topology.input_size

    @property
    def num_layers(self) -> int:
        """Number of weight layers."""
        return len(self.weights)

    @property
    def connections_per_neuron(self) -> float:
        """Average out-degree (the challenge fixes this at 32).

        For generated networks this is *exact* (an integer-valued float)
        whether or not the layers were shuffled: the per-layer neuron
        permutation is a column permutation, which preserves every
        layer's nnz, so ``topology.num_edges`` stays
        ``neurons * connections * num_layers`` -- consistent with
        :func:`repro.core.radixnet.radixnet_edge_count` applied to the
        underlying mixed-radix layer (each of the ``N'`` rows of a
        mixed-radix submatrix stores exactly its radix's entries).
        """
        return self.topology.num_edges / (self.neurons * self.num_layers)

    def __getstate__(self) -> dict:
        # repro.challenge.inference.engine_for memoizes per-backend engines
        # on the instance; each engine holds transposed copies of every
        # weight matrix, so shipping them along (e.g. to process-pool
        # workers) would multiply the pickle payload.  They rebuild lazily.
        state = dict(self.__dict__)
        state.pop("_engines", None)
        return state

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ChallengeNetwork(neurons={self.neurons}, layers={self.num_layers}, "
            f"connections/neuron={self.connections_per_neuron:.1f})"
        )


def _challenge_base_layer(neurons: int, connections: int) -> CSRMatrix:
    """The ``neurons x neurons`` mixed-radix layer with degree ``connections``.

    This is the level-0 adjacency submatrix of the mixed-radix system
    ``(connections, neurons / connections)``: a circulant with exactly
    ``connections`` outgoing and incoming edges per neuron -- the structure
    the RadiX-Net generator produced for the official challenge networks.
    """
    from repro.core.mixed_radix_topology import mixed_radix_submatrix
    from repro.numeral.mixed_radix import MixedRadixSystem

    neurons = check_positive_int(neurons, "neurons", minimum=2)
    connections = check_positive_int(connections, "connections", minimum=2)
    if neurons % connections != 0:
        raise ValidationError(
            f"neurons ({neurons}) must be divisible by connections ({connections}) "
            "for an exact RadiX-Net challenge layer"
        )
    if neurons == connections:
        system = MixedRadixSystem((connections,))
    else:
        system = MixedRadixSystem((connections, neurons // connections))
    return mixed_radix_submatrix(system, 0)


def _validate_challenge_params(
    neurons: int, num_layers: int, connections: int, threshold: float
) -> tuple[int, int, int]:
    """Shared argument validation of the streaming and collecting generators."""
    neurons = check_positive_int(neurons, "neurons", minimum=2)
    num_layers = check_positive_int(num_layers, "num_layers")
    connections = check_positive_int(connections, "connections", minimum=2)
    if neurons % connections != 0:
        raise ValidationError(
            f"neurons ({neurons}) must be divisible by connections ({connections})"
        )
    if threshold <= 0:
        raise ValidationError("threshold must be positive")
    return neurons, num_layers, connections


def challenge_bias_value(connections: int, weight: float) -> float:
    """The constant per-neuron bias of a generated challenge layer.

    Keeps a typically-active neuron just above zero, as in the
    challenge's choice of -0.3 at 32 connections and weight 0.0625
    (incoming weight sum 2).
    """
    return -0.3 * connections * weight / 2.0


def iter_generate_challenge_layers(
    neurons: int,
    num_layers: int,
    *,
    connections: int = 8,
    weight_value: float | None = None,
    threshold: float = 32.0,
    seed: RngLike = None,
    shuffle_neurons: bool = True,
    backend: str | SparseBackend | None = None,
) -> Iterator[tuple[CSRMatrix, np.ndarray]]:
    """Lazily yield the ``(weight, bias)`` layers of a challenge network.

    The streaming counterpart of :func:`generate_challenge_network` (same
    parameters, identical layers for identical arguments): one CSR layer
    is built -- and may be consumed, written to disk, or dropped --
    before the next exists, so peak weight memory is a single layer's
    nnz regardless of depth.  That makes the official 16384/65536-neuron
    sizes generable: a 65536-neuron layer holds ``65536 x 32`` entries
    (a few tens of MB) where the old dense per-layer round-trip needed a
    ``65536^2`` float64 buffer (32 GB).

    Feed the iterator directly to
    :func:`repro.challenge.inference.streaming_inference` (generate ->
    infer without the network ever being resident) or to
    :func:`repro.challenge.io.save_challenge_layers` (generate -> TSV +
    sidecar on disk, one layer at a time).

    ``backend`` selects the sparse kernels for the per-layer column
    permutation (``None`` = the active backend).  ``threshold`` is
    accepted (and validated) for signature parity with
    :func:`generate_challenge_network`; it does not affect the layers.

    Arguments are validated *eagerly* (at the call, not on first
    ``next()``), so callers that set up side effects -- output
    directories, progress reporting -- before consuming the stream see
    bad parameters immediately.
    """
    neurons, num_layers, connections = _validate_challenge_params(
        neurons, num_layers, connections, threshold
    )
    weight = float(weight_value) if weight_value is not None else 2.0 / connections
    rng = ensure_rng(seed)

    def _layers() -> Iterator[tuple[CSRMatrix, np.ndarray]]:
        from repro.sparse.ops import permute_columns

        # Base mixed-radix layer: N' = neurons, first radix = connections,
        # so every neuron has exactly `connections` outgoing and incoming
        # edges.
        base_layer = _challenge_base_layer(neurons, connections)
        base_weight = base_layer.with_data(np.full(base_layer.nnz, weight))
        bias_value = challenge_bias_value(connections, weight)
        for _ in range(num_layers):
            layer = base_weight
            if shuffle_neurons:
                # sparse column permutation: O(nnz), preserves per-layer
                # nnz (so connections_per_neuron stays exact) -- never a
                # dense N x N buffer
                layer = permute_columns(
                    base_weight, rng.permutation(neurons), backend=backend
                )
            yield layer, np.full(neurons, bias_value)

    return _layers()


def generate_challenge_network(
    neurons: int,
    num_layers: int,
    *,
    connections: int = 8,
    weight_value: float | None = None,
    threshold: float = 32.0,
    seed: RngLike = None,
    shuffle_neurons: bool = True,
    backend: str | SparseBackend | None = None,
) -> ChallengeNetwork:
    """Generate a challenge-style sparse DNN.

    Collects the layer stream of :func:`iter_generate_challenge_layers`
    into a materialized :class:`ChallengeNetwork`; for networks too large
    to hold resident, use the iterator directly.

    Parameters
    ----------
    neurons:
        Neurons per layer.  Must be divisible by ``connections``.
    num_layers:
        Number of weight layers.
    connections:
        Out-degree (and in-degree) of every neuron in every layer.  The
        official challenge uses 32; smaller values keep tests fast.
    weight_value:
        Constant weight value.  Defaults to ``2 / connections`` so the sum
        of incoming weights at every neuron is 2 -- the convention of the
        official challenge networks (weight 0.0625 at 32 connections),
        which keeps activations alive across many layers.
    threshold:
        The activation clamp (32 in the challenge).
    shuffle_neurons:
        Apply a per-layer random permutation of neuron labels, matching how
        the challenge instances decorrelate consecutive layers; the
        underlying structure stays a mixed-radix (RadiX-Net) layer.
    backend:
        Sparse-kernel backend for the per-layer column permutation
        (``None`` = the active backend).
    """
    weights: list[CSRMatrix] = []
    biases: list[np.ndarray] = []
    for weight, bias in iter_generate_challenge_layers(
        neurons,
        num_layers,
        connections=connections,
        weight_value=weight_value,
        threshold=threshold,
        seed=seed,
        shuffle_neurons=shuffle_neurons,
        backend=backend,
    ):
        weights.append(weight)
        biases.append(bias)
    submatrices = [w.astype_binary() for w in weights]
    topology = FNNT(submatrices, validate=False, name=f"graph-challenge-{neurons}x{num_layers}")
    return ChallengeNetwork(
        topology=topology,
        weights=tuple(weights),
        biases=tuple(biases),
        threshold=float(threshold),
    )


def challenge_input_batch(
    neurons: int,
    batch_size: int,
    *,
    active_fraction: float = 0.3,
    seed: RngLike = None,
) -> np.ndarray:
    """A random sparse 0/1 input batch shaped ``(batch_size, neurons)``.

    The official challenge feeds thresholded MNIST images zero-padded to the
    layer width; a Bernoulli 0/1 batch with a comparable active fraction
    exercises the identical compute path.
    """
    neurons = check_positive_int(neurons, "neurons")
    batch_size = check_positive_int(batch_size, "batch_size")
    if not 0.0 < active_fraction <= 1.0:
        raise ValidationError("active_fraction must be in (0, 1]")
    rng = ensure_rng(seed)
    batch = (rng.random((batch_size, neurons)) < active_fraction).astype(np.float64)
    # guarantee at least one active input per row so categories are defined
    empty = np.flatnonzero(batch.sum(axis=1) == 0)
    if empty.size:
        batch[empty, rng.integers(0, neurons, size=empty.size)] = 1.0
    return batch


def scale_series(base_neurons: int = 16, count: int = 3) -> list[int]:
    """The neuron-count series used by the scaling benchmark (powers of 4).

    The official challenge scales 1024 -> 4096 -> 16384 -> 65536; the same
    x4 progression is reproduced from a smaller base so the benchmark runs
    in seconds.
    """
    base_neurons = check_positive_int(base_neurons, "base_neurons", minimum=2)
    count = check_positive_int(count, "count")
    return [base_neurons * (4**i) for i in range(count)]
