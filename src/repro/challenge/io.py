"""Graph Challenge interchange format (TSV) with a binary sidecar cache.

Layout on disk (mirrors the official distribution):

    <directory>/
        neuron<N>-l<i>.tsv     one file per layer, lines "row<TAB>col<TAB>weight",
                               1-based indices
        neuron<N>-meta.tsv     one line: neurons, layers, threshold, bias[0]
        neuron<N>-cache.npz    binary sidecar (optional): every layer's CSR
                               arrays, written by save/load so repeated runs
                               skip TSV parsing entirely

TSV paths are fully vectorized: writes go through ``np.savetxt`` on the
stacked COO triples and reads through chunked ``np.loadtxt`` (a bounded
number of rows per chunk, so a 65536-neuron layer file never needs a
per-line Python loop *or* an unbounded parse buffer).

The ``.npz`` sidecar stores each layer's canonical CSR arrays
(``l<i>_indptr`` / ``l<i>_indices`` / ``l<i>_data``) uncompressed.  It is
consulted only when *fresh* -- at least as new as every source TSV --
and rebuilt from the TSVs otherwise, so editing a layer file invalidates
the cache by mtime alone.  Because ``np.savez`` members are stored
uncompressed, fresh cache reads memory-map the arrays straight out of
the zip archive (falling back to a plain read where mapping is not
possible), which makes repeated benchmark runs on big networks
effectively free of I/O parsing cost.

:func:`iter_challenge_layers` is the streaming entry point for *reads*:
it yields one ``(weight, bias)`` pair at a time (from the cache when
fresh, from the TSVs otherwise) so
:func:`repro.challenge.inference.streaming_inference` can start the
first chunk before later layers are even read.
:func:`save_challenge_layers` is its *write* counterpart: it consumes a
lazy layer stream (e.g.
:func:`repro.challenge.generator.iter_generate_challenge_layers`) and
writes each layer's TSV -- and its sidecar members, incrementally --
before pulling the next, so official-scale networks reach disk with only
one layer's nnz resident.
"""

from __future__ import annotations

import os
import warnings
import zipfile
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import NamedTuple

import numpy as np

from repro.errors import SerializationError
from repro.challenge.generator import ChallengeNetwork
from repro.sparse.csr import CSRMatrix
from repro.topology.fnnt import FNNT

CACHE_VERSION = 1

# rows per np.loadtxt call when parsing a layer TSV; bounds the parse
# buffer for arbitrarily large layer files
TSV_CHUNK_ROWS = 1 << 16


def _layer_path(directory: Path, neurons: int, index: int) -> Path:
    return directory / f"neuron{neurons}-l{index}.tsv"


def _meta_path(directory: Path, neurons: int) -> Path:
    return directory / f"neuron{neurons}-meta.tsv"


def cache_path(directory: str | os.PathLike, neurons: int) -> Path:
    """Location of the binary sidecar cache for a saved network."""
    return Path(directory) / f"neuron{neurons}-cache.npz"


# --------------------------------------------------------------------------- #
# metadata
# --------------------------------------------------------------------------- #
class ChallengeMeta(NamedTuple):
    """The contents of a saved network's ``neuron<N>-meta.tsv`` file."""

    neurons: int
    num_layers: int
    threshold: float
    bias_value: float


def read_challenge_meta(directory: str | os.PathLike, neurons: int) -> ChallengeMeta:
    """Read a saved network's metadata (neurons, layers, threshold, bias).

    The public face of the meta file: pipeline drivers need the layer
    count and threshold before deciding how (or whether) to stream the
    weights themselves.
    """
    return ChallengeMeta(*_read_meta(Path(directory), neurons))


def _read_meta(directory: Path, neurons: int) -> tuple[int, int, float, float]:
    meta_path = _meta_path(directory, neurons)
    if not meta_path.exists():
        raise SerializationError(f"metadata file not found: {meta_path}")
    fields = meta_path.read_text(encoding="utf-8").strip().split("\t")
    if len(fields) != 4:
        raise SerializationError(f"malformed metadata file: {meta_path}")
    try:
        n, num_layers = int(fields[0]), int(fields[1])
        threshold, bias_value = float(fields[2]), float(fields[3])
    except ValueError as exc:
        raise SerializationError(f"malformed metadata file: {meta_path}: {exc}") from None
    if n != int(neurons):
        raise SerializationError(
            f"metadata neuron count {n} does not match requested {neurons}"
        )
    return n, num_layers, threshold, bias_value


# --------------------------------------------------------------------------- #
# vectorized TSV parsing
# --------------------------------------------------------------------------- #
def _parse_layer_tsv(path: Path, neurons: int) -> CSRMatrix:
    """Parse one 1-based ``row<TAB>col<TAB>weight`` layer file into CSR.

    Reads in bounded chunks of :data:`TSV_CHUNK_ROWS` lines via
    ``np.loadtxt`` -- no per-line Python loop, no unbounded buffer.
    """
    if not path.exists():
        raise SerializationError(f"layer file not found: {path}")
    blocks: list[np.ndarray] = []
    try:
        with path.open("r", encoding="utf-8") as handle, warnings.catch_warnings():
            # loadtxt warns on an exhausted handle; an empty tail (or an
            # empty zero-nnz layer file) is expected here
            warnings.simplefilter("ignore", UserWarning)
            while True:
                block = np.loadtxt(
                    handle, dtype=np.float64, delimiter="\t",
                    ndmin=2, max_rows=TSV_CHUNK_ROWS,
                )
                if block.size == 0:
                    break
                if block.shape[1] != 3:
                    raise SerializationError(
                        f"{path}: expected 3 tab-separated fields per line, "
                        f"got {block.shape[1]}"
                    )
                blocks.append(block)
                if block.shape[0] < TSV_CHUNK_ROWS:
                    break
    except ValueError as exc:
        raise SerializationError(f"{path}: malformed layer file: {exc}") from None
    if not blocks:
        return CSRMatrix.zeros((neurons, neurons))
    triples = np.concatenate(blocks, axis=0)
    if not np.all(triples[:, :2] == np.floor(triples[:, :2])):
        raise SerializationError(
            f"{path}: row/col indices must be integers"
        )
    rows = triples[:, 0].astype(np.int64) - 1
    cols = triples[:, 1].astype(np.int64) - 1
    vals = triples[:, 2]
    if rows.size and (
        rows.min() < 0 or rows.max() >= neurons or cols.min() < 0 or cols.max() >= neurons
    ):
        raise SerializationError(f"{path}: index out of range for {neurons} neurons")
    # canonical CSR via lexsort + segment sum: entries may arrive in any
    # order, and duplicate (row, col) pairs coalesce by summation (the
    # COO convention, as in the official interchange files)
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    keys = rows * neurons + cols
    firsts = np.flatnonzero(np.concatenate(([True], keys[1:] != keys[:-1])))
    rows, cols = rows[firsts], cols[firsts]
    vals = np.add.reduceat(vals, firsts)
    indptr = np.zeros(neurons + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=neurons), out=indptr[1:])
    return CSRMatrix((neurons, neurons), indptr, cols, vals)


# --------------------------------------------------------------------------- #
# binary sidecar cache
# --------------------------------------------------------------------------- #
def _source_paths(directory: Path, neurons: int, num_layers: int) -> list[Path]:
    return [_meta_path(directory, neurons)] + [
        _layer_path(directory, neurons, i) for i in range(1, num_layers + 1)
    ]


def cache_is_fresh(directory: str | os.PathLike, neurons: int, num_layers: int) -> bool:
    """True when the sidecar exists and is at least as new as every source TSV."""
    directory = Path(directory)
    sidecar = cache_path(directory, neurons)
    if not sidecar.exists():
        return False
    cache_mtime = sidecar.stat().st_mtime_ns
    for source in _source_paths(directory, neurons, num_layers):
        # ">=", not ">": a TSV edited within the filesystem's mtime
        # granularity of the sidecar write must count as newer -- the
        # failure mode is silently serving stale weights, so ties go to
        # reparsing.  Nanosecond timestamps (st_mtime_ns, not the float
        # st_mtime, which cannot resolve sub-microsecond differences)
        # pair with the save path's commit nudge (_SidecarWriter.close)
        # to keep a just-saved network fresh on any filesystem with
        # sub-write resolution.
        if source.exists() and source.stat().st_mtime_ns >= cache_mtime:
            return False
    return True


class _SidecarWriter:
    """Incrementally build the uncompressed ``.npz`` sidecar, layer by layer.

    The streaming replacement for a one-shot ``np.savez``: each layer's
    CSR arrays are appended to the (temporary) zip archive as soon as
    they exist, so a network generated or copied layer by layer never
    needs all weights resident to get a sidecar.  Members are stored
    uncompressed (``ZIP_STORED``), exactly like ``np.savez``, so the
    mmap fast path of :func:`_mmap_npz_member` applies unchanged.

    Weights only: threshold/bias stay in the (freshness-checked) meta
    TSV, which every load path reads -- duplicating them here would just
    create a second, possibly desynced source of truth.  The archive is
    written to a temp name and renamed into place on :meth:`close`
    (write-then-rename, so networks already holding memmaps into the old
    sidecar keep reading the old inode instead of seeing their bytes
    rewritten); :meth:`abort` discards it.
    """

    def __init__(self, directory: Path, neurons: int, num_layers: int) -> None:
        self.directory = directory
        self.neurons = int(neurons)
        self.num_layers = int(num_layers)
        self.final = cache_path(directory, neurons)
        self.temp = self.final.with_name(self.final.name + ".tmp.npz")
        self._zip = zipfile.ZipFile(self.temp, "w", zipfile.ZIP_STORED)
        self._write_array(
            "meta", np.array([neurons, num_layers, CACHE_VERSION], dtype=np.int64)
        )

    def _write_array(self, name: str, array: np.ndarray) -> None:
        # force_zip64: member sizes are unknown up front in streaming
        # write mode, and official-depth archives can exceed 4 GB
        with self._zip.open(f"{name}.npy", "w", force_zip64=True) as member:
            np.lib.format.write_array(
                member, np.ascontiguousarray(array), allow_pickle=False
            )

    def add_layer(self, index: int, weight: CSRMatrix) -> None:
        self._write_array(f"l{index}_indptr", weight.indptr)
        self._write_array(f"l{index}_indices", weight.indices)
        self._write_array(f"l{index}_data", weight.data)

    def close(self) -> Path:
        self._zip.close()
        os.replace(self.temp, self.final)
        # File timestamps have kernel-tick granularity, so a source TSV
        # (or the meta file) written in the same tick as the archive
        # would *tie* with it -- and cache_is_fresh resolves ties to
        # "stale".  Nudge the sidecar strictly past its sources so a
        # just-saved network is always fresh.
        newest = max(
            (
                source.stat().st_mtime_ns
                for source in _source_paths(self.directory, self.neurons, self.num_layers)
                if source.exists()
            ),
            default=0,
        )
        stat = self.final.stat()
        if stat.st_mtime_ns <= newest:
            os.utime(self.final, ns=(stat.st_atime_ns, newest + 1))
        return self.final

    def abort(self) -> None:
        try:
            self._zip.close()
        except OSError:
            # cleanup must not mask the error that triggered the abort
            pass
        self.temp.unlink(missing_ok=True)


def write_cache(network: ChallengeNetwork, directory: str | os.PathLike) -> Path:
    """Write the binary sidecar cache of ``network``; returns its path."""
    writer = _SidecarWriter(Path(directory), network.neurons, network.num_layers)
    try:
        for i, weight in enumerate(network.weights, start=1):
            writer.add_layer(i, weight)
        return writer.close()
    except BaseException:
        writer.abort()
        raise


def _mmap_npz_member(path: Path, archive: zipfile.ZipFile, name: str) -> np.ndarray | None:
    """Memory-map one uncompressed member of an open ``.npz`` archive.

    ``np.load(..., mmap_mode=...)`` does not map into zip archives, but
    ``np.savez`` stores members uncompressed, so the raw ``.npy`` bytes
    sit contiguously in the file: locate them through the (already
    parsed) zip directory, parse the npy header, and hand the remainder
    to ``np.memmap``.  Returns ``None`` whenever any assumption fails
    (compressed member, unexpected npy version, ...); callers fall back
    to a plain read.
    """
    try:
        info = archive.getinfo(f"{name}.npy")
        if info.compress_type != zipfile.ZIP_STORED:
            return None
        with path.open("rb") as handle:
            handle.seek(info.header_offset)
            local_header = handle.read(30)
            if len(local_header) != 30 or local_header[:4] != b"PK\x03\x04":
                return None
            name_len = int.from_bytes(local_header[26:28], "little")
            extra_len = int.from_bytes(local_header[28:30], "little")
            handle.seek(info.header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
            else:
                return None
            if fortran or dtype.hasobject:
                return None
            offset = handle.tell()
        return np.memmap(path, dtype=dtype, mode="r", shape=shape, offset=offset)
    except (OSError, KeyError, ValueError, zipfile.BadZipFile):
        return None


class _CacheReader:
    """Fresh-sidecar reader: memory-mapped members with a plain-read fallback.

    Close after use: the memmaps handed out by :meth:`array` hold their
    own file handles, so the reader's archive handle is only needed while
    arrays are being read.
    """

    def __init__(self, path: Path, *, mmap: bool = True) -> None:
        self.path = path
        self.mmap = mmap
        self._npz = np.load(path)
        # np.load already parsed the archive's directory; reuse it for
        # member lookups instead of re-opening the zip per array
        self._archive = getattr(self._npz, "zip", None) if mmap else None
        self._own_archive = False
        if mmap and self._archive is None:  # pragma: no cover - older numpy
            self._archive = zipfile.ZipFile(path)
            self._own_archive = True

    def array(self, name: str) -> np.ndarray:
        if self._archive is not None:
            mapped = _mmap_npz_member(self.path, self._archive, name)
            if mapped is not None:
                return mapped
        return self._npz[name]

    def close(self) -> None:
        if self._own_archive and self._archive is not None:  # pragma: no cover
            self._archive.close()
        self._npz.close()  # also closes the archive np.load opened
        self._archive = None

    def layer(self, index: int, neurons: int) -> CSRMatrix:
        return CSRMatrix(
            (neurons, neurons),
            self.array(f"l{index}_indptr"),
            self.array(f"l{index}_indices"),
            self.array(f"l{index}_data"),
        )

    def matches(self, neurons: int, num_layers: int) -> bool:
        try:
            meta = np.asarray(self._npz["meta"])
            return (
                meta.shape == (3,)
                and int(meta[0]) == neurons
                and int(meta[1]) == num_layers
                and int(meta[2]) == CACHE_VERSION
            )
        except (KeyError, ValueError):
            return False


def _open_fresh_cache(
    directory: Path, neurons: int, num_layers: int, *, mmap: bool
) -> _CacheReader | None:
    if not cache_is_fresh(directory, neurons, num_layers):
        return None
    try:
        reader = _CacheReader(cache_path(directory, neurons), mmap=mmap)
    except (OSError, ValueError, zipfile.BadZipFile):
        return None  # unreadable sidecar: treat as absent, reparse the TSVs
    if not reader.matches(neurons, num_layers):
        return None
    return reader


# --------------------------------------------------------------------------- #
# public API
# --------------------------------------------------------------------------- #
def _write_layer_tsv(path: Path, weight: CSRMatrix) -> None:
    """Write one layer in the official 1-based ``row<TAB>col<TAB>weight`` format.

    Vectorized: ``np.savetxt`` over the stacked COO triples, no per-nnz
    Python loop.  Shared by the materialized and streaming save paths so
    both produce byte-identical files (guarded by the golden-file tests).
    """
    coo = weight.to_coo().coalesce()
    triples = np.column_stack([coo.rows + 1.0, coo.cols + 1.0, coo.values])
    np.savetxt(path, triples, fmt=("%d", "%d", "%.17g"), delimiter="\t")


def save_challenge_layers(
    directory: str | os.PathLike,
    layers: Iterable[tuple[CSRMatrix, np.ndarray]],
    *,
    neurons: int,
    num_layers: int,
    threshold: float,
    write_sidecar: bool = True,
) -> Path:
    """Stream ``(weight, bias)`` layers to the challenge TSV format.

    The fully streaming counterpart of :func:`save_challenge_network`:
    ``layers`` is consumed one pair at a time, and each layer's TSV file
    (and, unless ``write_sidecar`` is false, its binary sidecar members)
    is written before the next layer is pulled -- so pairing this with
    :func:`repro.challenge.generator.iter_generate_challenge_layers`
    writes official-scale networks (16384/65536 neurons) with only a
    single layer's nnz ever resident.

    ``neurons``, ``num_layers``, and ``threshold`` describe the stream
    (the TSV layout needs them in file names and metadata before the
    layers exist); the iterator must yield exactly ``num_layers`` pairs
    of ``(neurons x neurons)`` weights with constant biases (the official
    meta format stores a single bias value per network), and a
    :class:`SerializationError` is raised -- and the partial sidecar
    discarded -- on any mismatch.  Returns the directory.
    """
    from repro.utils.validation import check_positive_int

    n = check_positive_int(neurons, "neurons")
    expected_layers = check_positive_int(num_layers, "num_layers")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    # The meta file is the commit record: remove any previous one *before*
    # touching layer files, and (re)write it only after every layer landed.
    # A save that fails or is interrupted midway over an existing network
    # therefore leaves a directory that loads with a loud "metadata file
    # not found" instead of silently serving a mix of new and old layers.
    _meta_path(directory, n).unlink(missing_ok=True)
    sidecar = _SidecarWriter(directory, n, expected_layers) if write_sidecar else None
    bias_value: float | None = None
    try:
        count = 0
        for weight, bias in layers:
            count += 1
            if count > expected_layers:
                raise SerializationError(
                    f"layer iterator produced more than the declared "
                    f"{expected_layers} layers"
                )
            if weight.shape != (n, n):
                raise SerializationError(
                    f"layer {count} has shape {weight.shape}, expected ({n}, {n})"
                )
            bias_arr = np.asarray(bias, dtype=np.float64).ravel()
            value = float(bias_arr[0]) if bias_arr.size else 0.0
            if bias_arr.size != n or not np.all(bias_arr == value):
                raise SerializationError(
                    f"layer {count}: bias must be a constant length-{n} vector "
                    "(the challenge meta format stores one bias value)"
                )
            if bias_value is not None and value != bias_value:
                raise SerializationError(
                    f"layer {count}: bias value {value} differs from earlier "
                    f"layers' {bias_value} (the challenge meta format stores one "
                    "bias value for the whole network)"
                )
            bias_value = value
            _write_layer_tsv(_layer_path(directory, n, count), weight)
            if sidecar is not None:
                sidecar.add_layer(count, weight)
        if count != expected_layers:
            raise SerializationError(
                f"layer iterator produced {count} layers, expected {expected_layers}"
            )
        # meta before the sidecar commit: the sidecar must end up at
        # least as new as every source TSV or the next load reparses
        _meta_path(directory, n).write_text(
            f"{n}\t{expected_layers}\t{float(threshold):.17g}\t{bias_value:.17g}\n",
            encoding="utf-8",
        )
        if sidecar is not None:
            sidecar.close()
    except BaseException:
        # abort() after a failed close() is safe: the temp unlink
        # tolerates a missing file and re-closing the archive is a no-op
        if sidecar is not None:
            sidecar.abort()
        raise
    return directory


def save_challenge_network(
    network: ChallengeNetwork,
    directory: str | os.PathLike,
    *,
    write_sidecar: bool = True,
) -> Path:
    """Write a challenge network to a directory of TSV files; returns the directory.

    Delegates to the streaming :func:`save_challenge_layers` (the two
    paths produce byte-identical files).  Unless ``write_sidecar`` is
    false, the binary ``.npz`` cache is written alongside, so the first
    :func:`load_challenge_network` already skips TSV parsing.
    """
    return save_challenge_layers(
        directory,
        zip(network.weights, network.biases),
        neurons=network.neurons,
        num_layers=network.num_layers,
        threshold=network.threshold,
        write_sidecar=write_sidecar,
    )


def read_layer(
    directory: str | os.PathLike,
    neurons: int,
    index: int,
    *,
    use_cache: bool = True,
    mmap: bool = True,
) -> CSRMatrix:
    """Random-access read of one layer's weight matrix (1-based ``index``).

    The seek primitive of the resumable pipeline: a run restarting from
    a checkpoint at layer ``k`` reads layer ``k+1`` directly -- from the
    fresh sidecar (memory-mapped where possible) or that single layer's
    TSV -- without parsing any of the layers already applied.
    """
    directory = Path(directory)
    n, num_layers, _, _ = _read_meta(directory, neurons)
    if not 1 <= int(index) <= num_layers:
        raise SerializationError(
            f"layer index {index} out of range 1..{num_layers} for {directory}"
        )
    reader = (
        _open_fresh_cache(directory, n, num_layers, mmap=mmap) if use_cache else None
    )
    try:
        if reader is not None:
            return reader.layer(int(index), n)
        return _parse_layer_tsv(_layer_path(directory, n, int(index)), n)
    finally:
        if reader is not None:
            # safe to close before the arrays are consumed: the memmaps
            # handed out by the reader hold their own file handles
            reader.close()


def iter_challenge_layers(
    directory: str | os.PathLike,
    neurons: int,
    *,
    start: int = 0,
    use_cache: bool = True,
    mmap: bool = True,
) -> Iterator[tuple[CSRMatrix, np.ndarray]]:
    """Yield ``(weight, bias)`` one layer at a time, never all resident.

    Layers come from the binary sidecar when it is fresh (memory-mapped
    where possible) and from chunked TSV parsing otherwise.  ``start``
    skips that many leading layers *without reading them* (layer files
    are independent, so the seek is free) -- this is how a checkpointed
    run resumes from layer ``start + 1``.  Feed this directly to
    :func:`repro.challenge.inference.streaming_inference`::

        result = streaming_inference(
            iter_challenge_layers(directory, 1024), batch, threshold=32.0
        )
    """
    directory = Path(directory)
    n, num_layers, _, bias_value = _read_meta(directory, neurons)
    if not 0 <= int(start) <= num_layers:
        raise SerializationError(
            f"start={start} out of range 0..{num_layers} for {directory}"
        )
    reader = (
        _open_fresh_cache(directory, n, num_layers, mmap=mmap) if use_cache else None
    )
    try:
        for i in range(int(start) + 1, num_layers + 1):
            if reader is not None:
                weight = reader.layer(i, n)
            else:
                weight = _parse_layer_tsv(_layer_path(directory, n, i), n)
            yield weight, np.full(n, bias_value)
    finally:
        if reader is not None:
            reader.close()


def load_challenge_network(
    directory: str | os.PathLike,
    neurons: int,
    *,
    use_cache: bool = True,
    mmap: bool = True,
) -> ChallengeNetwork:
    """Load a challenge network previously written by :func:`save_challenge_network`.

    When a fresh ``.npz`` sidecar is present the weights come straight
    from it (memory-mapped where possible); otherwise the TSVs are parsed
    with the vectorized chunked reader and -- unless ``use_cache`` is
    false -- the sidecar is (re)written so the next load skips parsing.
    """
    directory = Path(directory)
    n, num_layers, threshold, bias_value = _read_meta(directory, neurons)
    reader = (
        _open_fresh_cache(directory, n, num_layers, mmap=mmap) if use_cache else None
    )
    weights: list[CSRMatrix] = []
    submatrices: list[CSRMatrix] = []
    biases: list[np.ndarray] = []
    try:
        for i in range(1, num_layers + 1):
            if reader is not None:
                weight = reader.layer(i, n)
            else:
                weight = _parse_layer_tsv(_layer_path(directory, n, i), n)
            weights.append(weight)
            submatrices.append(weight.astype_binary())
            biases.append(np.full(n, bias_value))
    finally:
        if reader is not None:
            reader.close()
    topology = FNNT(submatrices, validate=False, name=f"graph-challenge-{n}x{num_layers}")
    network = ChallengeNetwork(
        topology=topology,
        weights=tuple(weights),
        biases=tuple(biases),
        threshold=threshold,
    )
    if use_cache and reader is None:
        try:
            write_cache(network, directory)
        except OSError:
            # the sidecar is an opportunistic speed-up; loading from a
            # read-only directory must still succeed
            pass
    return network
