"""Graph Challenge interchange format (TSV) for whole networks.

Layout on disk (mirrors the official distribution):

    <directory>/
        neuron<N>-l<i>.tsv     one file per layer, lines "row<TAB>col<TAB>weight",
                               1-based indices
        neuron<N>-meta.tsv     one line: neurons, layers, threshold, bias[0]
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import SerializationError
from repro.challenge.generator import ChallengeNetwork
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.topology.fnnt import FNNT


def save_challenge_network(network: ChallengeNetwork, directory: str | os.PathLike) -> Path:
    """Write a challenge network to a directory of TSV files; returns the directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    n = network.neurons
    for i, weight in enumerate(network.weights, start=1):
        coo = weight.to_coo().coalesce()
        path = directory / f"neuron{n}-l{i}.tsv"
        with path.open("w", encoding="utf-8") as handle:
            for r, c, v in zip(coo.rows, coo.cols, coo.values):
                handle.write(f"{int(r) + 1}\t{int(c) + 1}\t{v:.17g}\n")
    meta = directory / f"neuron{n}-meta.tsv"
    with meta.open("w", encoding="utf-8") as handle:
        handle.write(
            f"{n}\t{network.num_layers}\t{network.threshold:.17g}\t{float(network.biases[0][0]):.17g}\n"
        )
    return directory


def load_challenge_network(directory: str | os.PathLike, neurons: int) -> ChallengeNetwork:
    """Load a challenge network previously written by :func:`save_challenge_network`."""
    directory = Path(directory)
    meta_path = directory / f"neuron{neurons}-meta.tsv"
    if not meta_path.exists():
        raise SerializationError(f"metadata file not found: {meta_path}")
    fields = meta_path.read_text(encoding="utf-8").strip().split("\t")
    if len(fields) != 4:
        raise SerializationError(f"malformed metadata file: {meta_path}")
    n, num_layers = int(fields[0]), int(fields[1])
    threshold, bias_value = float(fields[2]), float(fields[3])
    if n != int(neurons):
        raise SerializationError(
            f"metadata neuron count {n} does not match requested {neurons}"
        )
    weights: list[CSRMatrix] = []
    submatrices: list[CSRMatrix] = []
    biases: list[np.ndarray] = []
    for i in range(1, num_layers + 1):
        path = directory / f"neuron{n}-l{i}.tsv"
        if not path.exists():
            raise SerializationError(f"layer file not found: {path}")
        rows, cols, vals = [], [], []
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                parts = line.split("\t")
                if len(parts) != 3:
                    raise SerializationError(
                        f"{path}:{line_number}: expected 3 fields, got {len(parts)}"
                    )
                rows.append(int(parts[0]) - 1)
                cols.append(int(parts[1]) - 1)
                vals.append(float(parts[2]))
        weight = COOMatrix(
            (n, n),
            np.asarray(rows, dtype=np.int64),
            np.asarray(cols, dtype=np.int64),
            np.asarray(vals, dtype=np.float64),
        ).to_csr()
        weights.append(weight)
        submatrices.append(weight.astype_binary())
        biases.append(np.full(n, bias_value))
    topology = FNNT(submatrices, validate=False, name=f"graph-challenge-{n}x{num_layers}")
    return ChallengeNetwork(
        topology=topology,
        weights=tuple(weights),
        biases=tuple(biases),
        threshold=threshold,
    )
