"""Graph Challenge style sparse DNN inference.

The MIT/IEEE/Amazon Graph Challenge "Sparse Deep Neural Network" benchmark
distributes large sparse networks **generated with RadiX-Net** and asks
implementations to run the inference recurrence

    Y_{l+1} = ReLU( Y_l W_l + b_l ),  clamped to [0, threshold]

over all layers, then report which inputs remain active (the "categories").
This subpackage regenerates challenge-style instances directly from the
RadiX-Net construction -- fully sparse and streaming, so the official
16384/65536-neuron sizes are generable layer by layer
(:func:`~repro.challenge.generator.iter_generate_challenge_layers` +
:func:`~repro.challenge.io.save_challenge_layers`) -- provides the batched
:class:`~repro.challenge.inference.InferenceEngine` (backend-pluggable via
:mod:`repro.backends`, with precomputed transposed weights, a dense/sparse
:class:`~repro.challenge.inference.ActivationPolicy`, chunked mini-batch
streaming, and optional process-pool fan-out), streams networks layer by
layer from disk (:func:`~repro.challenge.io.iter_challenge_layers` +
:func:`~repro.challenge.inference.streaming_inference`), and round-trips
the challenge's TSV interchange format with a binary ``.npz`` sidecar
cache for repeated runs.
"""

from repro.challenge.generator import (
    ChallengeNetwork,
    challenge_input_batch,
    generate_challenge_network,
    iter_generate_challenge_layers,
)
from repro.challenge.inference import (
    ActivationPolicy,
    DenseActivations,
    InferenceEngine,
    InferenceResult,
    SparseActivations,
    engine_for,
    infer_categories,
    layer_activation_profile,
    sparse_dnn_inference,
    streaming_inference,
)
from repro.challenge.io import (
    ChallengeMeta,
    iter_challenge_layers,
    load_challenge_network,
    read_challenge_meta,
    read_layer,
    save_challenge_layers,
    save_challenge_network,
)
from repro.challenge.pipeline import (
    CheckpointStage,
    ComputeStage,
    LoadStage,
    PipelineOutcome,
    PipelineState,
    load_checkpoint,
    resume_challenge_pipeline,
    run_challenge_pipeline,
    run_pipeline,
    save_checkpoint,
)
from repro.challenge.verify import verify_categories, category_checksum

__all__ = [
    "ChallengeNetwork",
    "generate_challenge_network",
    "iter_generate_challenge_layers",
    "challenge_input_batch",
    "ActivationPolicy",
    "DenseActivations",
    "SparseActivations",
    "InferenceEngine",
    "engine_for",
    "sparse_dnn_inference",
    "streaming_inference",
    "infer_categories",
    "layer_activation_profile",
    "InferenceResult",
    "save_challenge_network",
    "save_challenge_layers",
    "load_challenge_network",
    "iter_challenge_layers",
    "read_challenge_meta",
    "read_layer",
    "ChallengeMeta",
    "LoadStage",
    "ComputeStage",
    "CheckpointStage",
    "PipelineState",
    "PipelineOutcome",
    "run_pipeline",
    "run_challenge_pipeline",
    "resume_challenge_pipeline",
    "save_checkpoint",
    "load_checkpoint",
    "verify_categories",
    "category_checksum",
]
