"""Coordinate-format (COO) sparse matrices.

COO is the natural *construction* format: the RadiX-Net generator emits
edge lists (row, col, value) and we convert to CSR for compute.  The class
stores parallel NumPy arrays and canonicalizes on demand (sorted by row
then column, duplicates summed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError, ValidationError


@dataclass(frozen=True)
class COOMatrix:
    """An immutable COO sparse matrix.

    Parameters
    ----------
    shape:
        ``(rows, cols)``.
    rows, cols:
        Integer index arrays of equal length.
    values:
        Entry values; defaults to all ones (topology matrices are 0/1).
    """

    shape: tuple[int, int]
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray

    def __init__(
        self,
        shape: tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray | None = None,
    ) -> None:
        nrows, ncols = int(shape[0]), int(shape[1])
        if nrows <= 0 or ncols <= 0:
            raise ShapeError(f"shape must be positive, got {shape}")
        row_arr = np.asarray(rows, dtype=np.int64).ravel()
        col_arr = np.asarray(cols, dtype=np.int64).ravel()
        if row_arr.shape != col_arr.shape:
            raise ShapeError(
                f"rows and cols must have equal length ({row_arr.size} != {col_arr.size})"
            )
        if values is None:
            val_arr = np.ones(row_arr.size, dtype=np.float64)
        else:
            val_arr = np.asarray(values, dtype=np.float64).ravel()
            if val_arr.shape != row_arr.shape:
                raise ShapeError("values must have the same length as rows/cols")
        if row_arr.size:
            if row_arr.min() < 0 or row_arr.max() >= nrows:
                raise ValidationError("row index out of bounds")
            if col_arr.min() < 0 or col_arr.max() >= ncols:
                raise ValidationError("column index out of bounds")
        object.__setattr__(self, "shape", (nrows, ncols))
        object.__setattr__(self, "rows", row_arr)
        object.__setattr__(self, "cols", col_arr)
        object.__setattr__(self, "values", val_arr)

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored entries (before duplicate coalescing)."""
        return int(self.rows.size)

    def coalesce(self) -> "COOMatrix":
        """Return an equivalent matrix sorted by (row, col) with duplicates summed."""
        if self.nnz == 0:
            return self
        order = np.lexsort((self.cols, self.rows))
        r, c, v = self.rows[order], self.cols[order], self.values[order]
        keys = r * self.shape[1] + c
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        summed = np.zeros(unique_keys.size, dtype=np.float64)
        np.add.at(summed, inverse, v)
        new_rows = unique_keys // self.shape[1]
        new_cols = unique_keys % self.shape[1]
        return COOMatrix(self.shape, new_rows, new_cols, summed)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense 2-D array (duplicates summed)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.rows, self.cols), self.values)
        return dense

    def to_csr(self) -> "CSRMatrix":
        """Convert to CSR (coalescing duplicates)."""
        from repro.sparse.csr import CSRMatrix

        coal = self.coalesce()
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, coal.rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(self.shape, indptr, coal.cols.copy(), coal.values.copy())

    def transpose(self) -> "COOMatrix":
        """Return the transpose (swaps rows and columns)."""
        return COOMatrix((self.shape[1], self.shape[0]), self.cols, self.rows, self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, COOMatrix):
            return NotImplemented
        if self.shape != other.shape:
            return False
        a, b = self.coalesce(), other.coalesce()
        return (
            np.array_equal(a.rows, b.rows)
            and np.array_equal(a.cols, b.cols)
            and np.allclose(a.values, b.values)
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
