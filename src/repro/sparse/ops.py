"""Sparse matrix kernels: SpGEMM, SpMM, SpMV, Kronecker products, powers.

These implement, in pure NumPy, exactly the operations the RadiX-Net
construction (Kronecker products of adjacency submatrices) and its
verification (chain products of submatrices for Theorem 1) require.

The SpGEMM here uses scipy.sparse internally when available for speed on
large instances, but the row-merge reference implementation is kept and
tested so the package is self-contained and the scipy path can be
cross-checked.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def _check_matmul_shapes(a: CSRMatrix, b: CSRMatrix) -> None:
    if a.shape[1] != b.shape[0]:
        raise ShapeError(
            f"cannot multiply shapes {a.shape} and {b.shape}: inner dimensions differ"
        )


def spgemm(a: CSRMatrix, b: CSRMatrix, *, use_scipy: bool = True) -> CSRMatrix:
    """Sparse-sparse matrix multiply ``a @ b`` over the (+, *) semiring.

    Parameters
    ----------
    use_scipy:
        When True (default) delegate to ``scipy.sparse`` which is much
        faster for large operands; the pure-NumPy row-merge path is used
        otherwise and in tests as a cross-check.
    """
    _check_matmul_shapes(a, b)
    if use_scipy:
        try:
            import scipy.sparse as sp
        except ImportError:  # pragma: no cover - scipy is a hard dependency
            use_scipy = False
        else:
            sa = sp.csr_matrix((a.data, a.indices, a.indptr), shape=a.shape)
            sb = sp.csr_matrix((b.data, b.indices, b.indptr), shape=b.shape)
            sc = (sa @ sb).tocsr()
            sc.sort_indices()
            sc.sum_duplicates()
            return CSRMatrix(sc.shape, sc.indptr.astype(np.int64), sc.indices.astype(np.int64), sc.data.astype(np.float64))
    return _spgemm_rowmerge(a, b)


def _spgemm_rowmerge(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Reference Gustavson row-merge SpGEMM (pure NumPy/Python)."""
    nrows, ncols = a.shape[0], b.shape[1]
    out_indptr = np.zeros(nrows + 1, dtype=np.int64)
    out_indices: list[np.ndarray] = []
    out_data: list[np.ndarray] = []
    accumulator = np.zeros(ncols, dtype=np.float64)
    for i in range(nrows):
        a_cols, a_vals = a.row(i)
        touched: list[np.ndarray] = []
        for k, av in zip(a_cols, a_vals):
            b_cols, b_vals = b.row(int(k))
            accumulator[b_cols] += av * b_vals
            touched.append(b_cols)
        if touched:
            cols = np.unique(np.concatenate(touched))
            vals = accumulator[cols]
            keep = vals != 0.0
            cols, vals = cols[keep], vals[keep]
            accumulator[cols] = 0.0
            accumulator[np.concatenate(touched)] = 0.0
        else:
            cols = np.empty(0, dtype=np.int64)
            vals = np.empty(0, dtype=np.float64)
        out_indices.append(cols)
        out_data.append(vals)
        out_indptr[i + 1] = out_indptr[i] + cols.size
    indices = np.concatenate(out_indices) if out_indices else np.empty(0, dtype=np.int64)
    data = np.concatenate(out_data) if out_data else np.empty(0, dtype=np.float64)
    return CSRMatrix((nrows, ncols), out_indptr, indices, data)


def spmm(a: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    """Sparse @ dense: multiply a CSR matrix by a dense matrix or batch."""
    arr = np.asarray(dense, dtype=np.float64)
    if arr.ndim == 1:
        return spmv(a, arr)
    if arr.ndim != 2 or arr.shape[0] != a.shape[1]:
        raise ShapeError(
            f"dense operand must have shape ({a.shape[1]}, k), got {arr.shape}"
        )
    out = np.zeros((a.shape[0], arr.shape[1]), dtype=np.float64)
    row_ids = np.repeat(np.arange(a.shape[0]), np.diff(a.indptr))
    # scatter-add of value-scaled rows of the dense operand
    np.add.at(out, row_ids, a.data[:, None] * arr[a.indices])
    return out


def spmv(a: CSRMatrix, vector: np.ndarray) -> np.ndarray:
    """Sparse matrix times dense vector."""
    vec = np.asarray(vector, dtype=np.float64).ravel()
    if vec.size != a.shape[1]:
        raise ShapeError(f"vector must have length {a.shape[1]}, got {vec.size}")
    products = a.data * vec[a.indices]
    out = np.zeros(a.shape[0], dtype=np.float64)
    row_ids = np.repeat(np.arange(a.shape[0]), np.diff(a.indptr))
    np.add.at(out, row_ids, products)
    return out


def sparse_transpose(a: CSRMatrix) -> CSRMatrix:
    """Transpose a CSR matrix (returns canonical CSR of the transpose)."""
    return a.to_coo().transpose().to_csr()


def sparse_add(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Entry-wise sum of two CSR matrices of identical shape."""
    if a.shape != b.shape:
        raise ShapeError(f"cannot add shapes {a.shape} and {b.shape}")
    a_coo, b_coo = a.to_coo(), b.to_coo()
    rows = np.concatenate([a_coo.rows, b_coo.rows])
    cols = np.concatenate([a_coo.cols, b_coo.cols])
    vals = np.concatenate([a_coo.values, b_coo.values])
    return COOMatrix(a.shape, rows, cols, vals).to_csr()


def kron(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Kronecker product ``a (x) b`` of two sparse matrices.

    This is the operation of the paper's equation (3): every RadiX-Net
    adjacency submatrix is ``W*_i (x) W_i`` where ``W*_i`` is the all-ones
    ``D_{i-1} x D_i`` matrix and ``W_i`` the mixed-radix submatrix.

    The result row ``i_a * rows(b) + i_b`` holds, for every stored pair,
    value ``a[i_a, j_a] * b[i_b, j_b]`` at column ``j_a * cols(b) + j_b``.
    """
    a_coo, b_coo = a.to_coo().coalesce(), b.to_coo().coalesce()
    out_shape = (a.shape[0] * b.shape[0], a.shape[1] * b.shape[1])
    if a_coo.nnz == 0 or b_coo.nnz == 0:
        return CSRMatrix.zeros(out_shape)
    rows = (a_coo.rows[:, None] * b.shape[0] + b_coo.rows[None, :]).ravel()
    cols = (a_coo.cols[:, None] * b.shape[1] + b_coo.cols[None, :]).ravel()
    vals = (a_coo.values[:, None] * b_coo.values[None, :]).ravel()
    return COOMatrix(out_shape, rows, cols, vals).to_csr()


def matrix_power(a: CSRMatrix, exponent: int) -> CSRMatrix:
    """Raise a square CSR matrix to a non-negative integer power."""
    if a.shape[0] != a.shape[1]:
        raise ShapeError(f"matrix_power requires a square matrix, got {a.shape}")
    if exponent < 0:
        raise ShapeError(f"exponent must be >= 0, got {exponent}")
    result = CSRMatrix.eye(a.shape[0])
    base = a
    e = exponent
    while e > 0:
        if e & 1:
            result = spgemm(result, base)
        e >>= 1
        if e:
            base = spgemm(base, base)
    return result


def chain_product(matrices: Sequence[CSRMatrix]) -> CSRMatrix:
    """Product ``W_1 @ W_2 @ ... @ W_n`` of a chain of conformable matrices.

    Used to compute the input-to-output path-count matrix of an FNNT (the
    entry ``[u, v]`` of the chain product counts directed paths from input
    node ``u`` to output node ``v``), which is how Theorem 1 is verified.
    """
    if not matrices:
        raise ShapeError("chain_product requires at least one matrix")
    result = matrices[0]
    for m in matrices[1:]:
        result = spgemm(result, m)
    return result
