"""Sparse matrix kernels: SpGEMM, SpMM, SpMV, Kronecker products, powers.

These are the operations the RadiX-Net construction (Kronecker products
of adjacency submatrices), its verification (chain products of
submatrices for Theorem 1), the Graph Challenge recurrence (the fused
:func:`sparse_layer_step` on sparse activation batches), the
challenge generator's per-layer neuron shuffling
(:func:`permute_columns`), and the sparse training backward pass (the
sampled dense-dense :func:`sdmm` weight-gradient kernel) require.

This module is a thin *dispatch layer*: it validates operand shapes and
forwards to the active :mod:`repro.backends` implementation (``scipy``
by default, ``reference`` and ``vectorized`` as pure-NumPy
alternatives, ``numba`` as the JIT-compiled ``prange``-parallel tier
when numba is installed).  Switch implementations globally or per-scope
with ``repro.backends.use(...)``, or per-call via the ``backend=``
keyword accepted by every kernel here -- a name, an instance, or
``"auto"`` (pick the fastest tier via a one-shot micro-probe; see
:mod:`repro.backends.selection`).  The public API of this module is
stable across backends.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.backends import available_backends, resolve_backend as _resolve
from repro.backends.base import SparseBackend
from repro.backends.fused import (
    clamp_bias_filter as _clamp_bias_filter,
    row_sums as _row_sums,
)
from repro.backends.reference import spgemm_rowmerge as _spgemm_rowmerge  # noqa: F401 - re-export
from repro.errors import ShapeError, ValidationError
from repro.sparse.csr import CSRMatrix


def _check_matmul_shapes(a: CSRMatrix, b: CSRMatrix) -> None:
    if a.shape[1] != b.shape[0]:
        raise ShapeError(
            f"cannot multiply shapes {a.shape} and {b.shape}: inner dimensions differ"
        )


def spgemm(
    a: CSRMatrix,
    b: CSRMatrix,
    *,
    use_scipy: bool | None = None,
    backend: str | SparseBackend | None = None,
) -> CSRMatrix:
    """Sparse-sparse matrix multiply ``a @ b`` over the (+, *) semiring.

    Parameters
    ----------
    use_scipy:
        Back-compat switch predating the backend registry: ``True``
        selects the ``scipy`` backend (falling back to ``reference``
        when scipy is not installed, as the pre-registry code did),
        ``False`` forces ``reference`` (the row-merge oracle).  Leave
        as ``None`` (default) to use the active backend.
    backend:
        Explicit backend name or instance for this call only; overrides
        ``use_scipy``.
    """
    _check_matmul_shapes(a, b)
    if backend is None and use_scipy is not None:
        if use_scipy and "scipy" in available_backends():
            backend = "scipy"
        else:
            backend = "reference"
    return _resolve(backend).spgemm(a, b)


def spmm(
    a: CSRMatrix, dense: np.ndarray, *, backend: str | SparseBackend | None = None
) -> np.ndarray:
    """Sparse @ dense: multiply a CSR matrix by a dense matrix or batch."""
    arr = np.asarray(dense, dtype=np.float64)
    if arr.ndim == 1:
        return spmv(a, arr, backend=backend)
    if arr.ndim != 2 or arr.shape[0] != a.shape[1]:
        raise ShapeError(
            f"dense operand must have shape ({a.shape[1]}, k), got {arr.shape}"
        )
    return _resolve(backend).spmm(a, arr)


def spmv(
    a: CSRMatrix, vector: np.ndarray, *, backend: str | SparseBackend | None = None
) -> np.ndarray:
    """Sparse matrix times dense vector."""
    vec = np.asarray(vector, dtype=np.float64).ravel()
    if vec.size != a.shape[1]:
        raise ShapeError(f"vector must have length {a.shape[1]}, got {vec.size}")
    return _resolve(backend).spmv(a, vec)


def sparse_transpose(
    a: CSRMatrix, *, backend: str | SparseBackend | None = None
) -> CSRMatrix:
    """Transpose a CSR matrix (returns canonical CSR of the transpose)."""
    return _resolve(backend).transpose(a)


def sparse_add(
    a: CSRMatrix, b: CSRMatrix, *, backend: str | SparseBackend | None = None
) -> CSRMatrix:
    """Entry-wise sum of two CSR matrices of identical shape."""
    if a.shape != b.shape:
        raise ShapeError(f"cannot add shapes {a.shape} and {b.shape}")
    return _resolve(backend).add(a, b)


def permute_columns(
    a: CSRMatrix,
    permutation: np.ndarray,
    *,
    backend: str | SparseBackend | None = None,
) -> CSRMatrix:
    """Sparse column selection ``a[:, permutation]`` (O(nnz), never dense).

    The result's column ``j`` is ``a``'s column ``permutation[j]`` --
    exactly ``CSRMatrix.from_dense(a.to_dense()[:, permutation])`` but
    without the ``rows x cols`` dense buffer (explicitly stored zeros
    are retained, as in ``transpose``).  This is the kernel that unlocks
    challenge-network generation at official Graph Challenge sizes
    (16384/65536 neurons), where the dense round-trip would allocate an
    N^2 buffer per layer.

    ``permutation`` must be a permutation of ``0..cols-1``; it is
    validated here once so backends can assume it.  Backends without a
    ``permute_columns`` kernel (e.g. custom registrations predating it)
    fall back to the shared pure-NumPy primitive
    :func:`repro.core.permutation.permute_csr_columns`.
    """
    perm = np.asarray(permutation, dtype=np.int64).ravel()
    if perm.size != a.shape[1]:
        raise ShapeError(
            f"permutation must have length {a.shape[1]} (one entry per column), "
            f"got {perm.size}"
        )
    if perm.size and (perm.min() < 0 or perm.max() >= perm.size):
        raise ValidationError("permutation entries must be in [0, cols)")
    if np.bincount(perm, minlength=perm.size).max(initial=1) > 1:
        raise ValidationError("permutation must not contain duplicate entries")
    impl = _resolve(backend)
    kernel = getattr(impl, "permute_columns", None)
    if kernel is not None:
        return kernel(a, perm)
    from repro.core.permutation import permute_csr_columns

    return permute_csr_columns(a, perm)


def kron(
    a: CSRMatrix, b: CSRMatrix, *, backend: str | SparseBackend | None = None
) -> CSRMatrix:
    """Kronecker product ``a (x) b`` of two sparse matrices.

    This is the operation of the paper's equation (3): every RadiX-Net
    adjacency submatrix is ``W*_i (x) W_i`` where ``W*_i`` is the all-ones
    ``D_{i-1} x D_i`` matrix and ``W_i`` the mixed-radix submatrix.

    The result row ``i_a * rows(b) + i_b`` holds, for every stored pair,
    value ``a[i_a, j_a] * b[i_b, j_b]`` at column ``j_a * cols(b) + j_b``.
    """
    return _resolve(backend).kron(a, b)


def sparse_layer_step(
    y: CSRMatrix,
    weight: CSRMatrix,
    bias: np.ndarray,
    threshold: float,
    *,
    backend: str | SparseBackend | None = None,
) -> CSRMatrix:
    """One Graph Challenge layer ``min(max(Y W + b, 0), threshold)`` on CSR ``Y``.

    The sparse-activation counterpart of the engine's dense SpMM step:
    ``Y`` is a CSR ``(batch, neurons)`` activation matrix and the result is
    again CSR with non-positive entries dropped.  The bias is added to
    stored entries of rows whose input row-sum is positive, which matches
    the dense recurrence exactly **when the bias is non-positive** (a
    positive bias would also lift entries the sparse product never
    stores); that precondition is validated here so backends can assume
    it.

    Backends without a fused ``sparse_layer_step`` kernel (e.g. custom
    registrations predating it) fall back to their ``spgemm`` followed by
    a shared vectorized bias/ReLU/clamp pass.
    """
    _check_matmul_shapes(y, weight)
    bias_arr = np.asarray(bias, dtype=np.float64).ravel()
    if bias_arr.size != weight.shape[1]:
        raise ShapeError(
            f"bias must have length {weight.shape[1]}, got {bias_arr.size}"
        )
    if np.any(bias_arr > 0.0):
        raise ValidationError(
            "sparse_layer_step requires a non-positive bias; positive biases "
            "activate entries outside the sparse product's pattern -- use the "
            "dense activation path instead"
        )
    impl = _resolve(backend)
    step = getattr(impl, "sparse_layer_step", None)
    if step is not None:
        return step(y, weight, bias_arr, float(threshold))
    active_rows = _row_sums(y) > 0.0
    z = impl.spgemm(y, weight)
    return _clamp_bias_filter(z, active_rows, bias_arr, float(threshold))


def sdmm(
    x: np.ndarray,
    dy: np.ndarray,
    pattern: CSRMatrix,
    *,
    backend: str | SparseBackend | None = None,
) -> CSRMatrix:
    """Sampled dense-dense multiply: ``x.T @ dy`` restricted to ``pattern``.

    The backward primitive of sparse training.  For a CSR-weighted affine
    layer ``Y = X W + b`` with fixed connectivity ``pattern``, the weight
    gradient ``X^T @ dY`` is only ever *applied* on the pattern's stored
    entries -- connections outside the topology stay exactly zero -- so
    this kernel computes just those entries: the result shares
    ``pattern``'s structure and has stored entry ``(i, j)`` equal to
    ``sum_b x[b, i] * dy[b, j]``.  Work and output are O(batch * nnz) and
    O(nnz); the dense ``rows x cols`` outer product is never formed.
    Stored values of ``pattern`` are ignored.

    Backends without an ``sdmm`` kernel (e.g. custom registrations
    predating it) fall back to the shared gather/einsum implementation
    :func:`repro.backends.fused.sdmm_gather`.
    """
    x_arr = np.asarray(x, dtype=np.float64)
    dy_arr = np.asarray(dy, dtype=np.float64)
    if x_arr.ndim != 2 or dy_arr.ndim != 2:
        raise ShapeError(
            f"sdmm operands must be 2-D (batch, features) arrays, got "
            f"ndim {x_arr.ndim} and {dy_arr.ndim}"
        )
    if x_arr.shape[0] != dy_arr.shape[0]:
        raise ShapeError(
            f"sdmm operands must share the batch dimension, got "
            f"{x_arr.shape} and {dy_arr.shape}"
        )
    if pattern.shape != (x_arr.shape[1], dy_arr.shape[1]):
        raise ShapeError(
            f"pattern shape {pattern.shape} does not match sampled product "
            f"shape ({x_arr.shape[1]}, {dy_arr.shape[1]})"
        )
    impl = _resolve(backend)
    kernel = getattr(impl, "sdmm", None)
    if kernel is not None:
        return kernel(x_arr, dy_arr, pattern)
    from repro.backends.fused import sdmm_gather

    return sdmm_gather(x_arr, dy_arr, pattern)


def matrix_power(
    a: CSRMatrix, exponent: int, *, backend: str | SparseBackend | None = None
) -> CSRMatrix:
    """Raise a square CSR matrix to a non-negative integer power."""
    if a.shape[0] != a.shape[1]:
        raise ShapeError(f"matrix_power requires a square matrix, got {a.shape}")
    if exponent < 0:
        raise ShapeError(f"exponent must be >= 0, got {exponent}")
    impl = _resolve(backend)
    result = CSRMatrix.eye(a.shape[0])
    base = a
    e = exponent
    while e > 0:
        if e & 1:
            result = impl.spgemm(result, base)
        e >>= 1
        if e:
            base = impl.spgemm(base, base)
    return result


def chain_product(
    matrices: Sequence[CSRMatrix], *, backend: str | SparseBackend | None = None
) -> CSRMatrix:
    """Product ``W_1 @ W_2 @ ... @ W_n`` of a chain of conformable matrices.

    Used to compute the input-to-output path-count matrix of an FNNT (the
    entry ``[u, v]`` of the chain product counts directed paths from input
    node ``u`` to output node ``v``), which is how Theorem 1 is verified.
    """
    if not matrices:
        raise ShapeError("chain_product requires at least one matrix")
    impl = _resolve(backend)
    result = matrices[0]
    for m in matrices[1:]:
        _check_matmul_shapes(result, m)
        result = impl.spgemm(result, m)
    return result
