"""Conversions between the package's sparse containers and external formats.

Supported targets: dense NumPy arrays, ``scipy.sparse`` CSR, and NetworkX
bipartite digraphs (one digraph per adjacency submatrix, with nodes labeled
``("in", i)`` / ``("out", j)``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.sparse.csr import CSRMatrix


def to_dense(matrix: CSRMatrix | np.ndarray) -> np.ndarray:
    """Return a dense float64 array for either a CSRMatrix or an ndarray."""
    if isinstance(matrix, CSRMatrix):
        return matrix.to_dense()
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise ShapeError(f"expected a 2-D array, got ndim={arr.ndim}")
    return arr


def from_dense(array: np.ndarray, *, tolerance: float = 0.0) -> CSRMatrix:
    """Build a CSRMatrix from a dense array."""
    return CSRMatrix.from_dense(array, tolerance=tolerance)


def to_scipy_csr(matrix: CSRMatrix):
    """Convert to a ``scipy.sparse.csr_matrix``."""
    import scipy.sparse as sp

    return sp.csr_matrix(
        (matrix.data.copy(), matrix.indices.copy(), matrix.indptr.copy()),
        shape=matrix.shape,
    )


def from_scipy(matrix) -> CSRMatrix:
    """Convert any scipy.sparse matrix to a :class:`CSRMatrix`."""
    import scipy.sparse as sp

    if not sp.issparse(matrix):
        raise ValidationError("from_scipy expects a scipy.sparse matrix")
    csr = matrix.tocsr()
    csr.sort_indices()
    csr.sum_duplicates()
    return CSRMatrix(
        csr.shape,
        csr.indptr.astype(np.int64),
        csr.indices.astype(np.int64),
        csr.data.astype(np.float64),
    )


def to_networkx_bipartite(matrix: CSRMatrix, *, in_prefix: str = "in", out_prefix: str = "out"):
    """Render a single adjacency submatrix as a bipartite NetworkX digraph.

    Rows become nodes ``(in_prefix, i)`` and columns ``(out_prefix, j)``;
    every stored entry becomes a directed edge carrying its value as the
    ``weight`` attribute.
    """
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(((in_prefix, i) for i in range(matrix.shape[0])), bipartite=0)
    graph.add_nodes_from(((out_prefix, j) for j in range(matrix.shape[1])), bipartite=1)
    coo = matrix.to_coo()
    graph.add_weighted_edges_from(
        ((in_prefix, int(r)), (out_prefix, int(c)), float(v))
        for r, c, v in zip(coo.rows, coo.cols, coo.values)
    )
    return graph
