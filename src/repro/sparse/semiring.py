"""Semiring matrix multiplication.

The GraphBLAS view of graph algorithms (Kepner & Gilbert) expresses
reachability, path counting, and shortest paths as matrix multiplication
over different semirings.  The RadiX-Net verification machinery uses:

* ``PLUS_TIMES``  -- ordinary arithmetic; chain products count paths.
* ``OR_AND``      -- boolean reachability; chain products answer
  path-connectedness without risking overflow on huge path counts.
* ``MIN_PLUS``    -- tropical semiring; chain products give hop-weighted
  shortest paths (useful for diagnostics on weighted topologies).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class Semiring:
    """A semiring ``(add, multiply, zero)`` over float64 values.

    ``add`` and ``multiply`` must be associative with ``zero`` the additive
    identity and multiplicative annihilator.  Both callables operate on
    NumPy arrays elementwise; ``add_reduce`` reduces along an axis.
    """

    name: str
    add_reduce: Callable[[np.ndarray], float]
    multiply: Callable[[np.ndarray, np.ndarray], np.ndarray]
    zero: float

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Semiring({self.name!r})"


PLUS_TIMES = Semiring(
    name="plus_times",
    add_reduce=lambda arr: float(np.sum(arr)),
    multiply=lambda a, b: a * b,
    zero=0.0,
)

OR_AND = Semiring(
    name="or_and",
    add_reduce=lambda arr: float(np.any(arr != 0.0)),
    multiply=lambda a, b: ((a != 0.0) & (b != 0.0)).astype(np.float64),
    zero=0.0,
)

MIN_PLUS = Semiring(
    name="min_plus",
    add_reduce=lambda arr: float(np.min(arr)) if arr.size else np.inf,
    multiply=lambda a, b: a + b,
    zero=np.inf,
)


def semiring_spgemm(a: CSRMatrix, b: CSRMatrix, semiring: Semiring) -> CSRMatrix:
    """Multiply two CSR matrices over an arbitrary semiring.

    This is a reference implementation (row-by-row accumulation in Python)
    intended for verification on moderate sizes; the hot arithmetic path
    should use :func:`repro.sparse.ops.spgemm` instead.
    """
    if a.shape[1] != b.shape[0]:
        raise ShapeError(
            f"cannot multiply shapes {a.shape} and {b.shape}: inner dimensions differ"
        )
    nrows, ncols = a.shape[0], b.shape[1]
    out_rows: list[int] = []
    out_cols: list[int] = []
    out_vals: list[float] = []
    for i in range(nrows):
        a_cols, a_vals = a.row(i)
        # gather contributions per output column
        contributions: dict[int, list[float]] = {}
        for k, av in zip(a_cols, a_vals):
            b_cols, b_vals = b.row(int(k))
            products = semiring.multiply(np.full(b_vals.shape, av), b_vals)
            for j, p in zip(b_cols, products):
                contributions.setdefault(int(j), []).append(float(p))
        for j, parts in contributions.items():
            value = semiring.add_reduce(np.asarray(parts, dtype=np.float64))
            if value != semiring.zero:
                out_rows.append(i)
                out_cols.append(j)
                out_vals.append(value)
    from repro.sparse.coo import COOMatrix

    if not out_rows:
        return CSRMatrix.zeros((nrows, ncols))
    return COOMatrix(
        (nrows, ncols),
        np.asarray(out_rows, dtype=np.int64),
        np.asarray(out_cols, dtype=np.int64),
        np.asarray(out_vals, dtype=np.float64),
    ).to_csr()


def semiring_chain_product(matrices: list[CSRMatrix], semiring: Semiring) -> CSRMatrix:
    """Chain product over a semiring (left to right)."""
    if not matrices:
        raise ShapeError("semiring_chain_product requires at least one matrix")
    result = matrices[0]
    for m in matrices[1:]:
        result = semiring_spgemm(result, m, semiring)
    return result
