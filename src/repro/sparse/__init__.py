"""A small sparse-matrix kernel library.

The RadiX-Net construction and its verification only need a handful of
sparse operations -- Kronecker products, sparse-sparse matrix multiply
(SpGEMM), sparse-dense multiply (SpMM), transposition, and semiring
variants of matmul for path counting / reachability.  This subpackage
implements them on top of NumPy with explicit CSR/COO containers, plus
adapters to and from ``scipy.sparse`` and dense arrays.

The containers are intentionally immutable-after-construction: topology
matrices are built once and then only read, which keeps the hot inference
and verification paths free of copy-on-write surprises.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import (
    spgemm,
    spmm,
    spmv,
    kron,
    permute_columns,
    sparse_transpose,
    sparse_add,
    matrix_power,
    chain_product,
)
from repro.sparse.semiring import Semiring, PLUS_TIMES, OR_AND, MIN_PLUS, semiring_spgemm
from repro.sparse.convert import (
    to_scipy_csr,
    from_scipy,
    to_dense,
    from_dense,
    to_networkx_bipartite,
)

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "spgemm",
    "spmm",
    "spmv",
    "kron",
    "permute_columns",
    "sparse_transpose",
    "sparse_add",
    "matrix_power",
    "chain_product",
    "Semiring",
    "PLUS_TIMES",
    "OR_AND",
    "MIN_PLUS",
    "semiring_spgemm",
    "to_scipy_csr",
    "from_scipy",
    "to_dense",
    "from_dense",
    "to_networkx_bipartite",
]
