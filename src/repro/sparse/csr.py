"""Compressed-sparse-row (CSR) matrices.

CSR is the compute format of the package: adjacency submatrices of FNNTs
are stored as CSR, and the Graph Challenge inference kernel, the path
counting semiring products, and the Kronecker expansion all operate on it.

Invariant: ``indptr`` is monotonically non-decreasing with
``indptr[0] == 0`` and ``indptr[-1] == len(indices) == len(data)``, and
column indices are strictly increasing within each row (canonical form).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError, ValidationError


@dataclass(frozen=True)
class CSRMatrix:
    """An immutable CSR sparse matrix with float64 data."""

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __init__(
        self,
        shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray | None = None,
    ) -> None:
        nrows, ncols = int(shape[0]), int(shape[1])
        if nrows <= 0 or ncols <= 0:
            raise ShapeError(f"shape must be positive, got {shape}")
        indptr_arr = np.asarray(indptr, dtype=np.int64).ravel()
        indices_arr = np.asarray(indices, dtype=np.int64).ravel()
        if data is None:
            data_arr = np.ones(indices_arr.size, dtype=np.float64)
        else:
            data_arr = np.asarray(data, dtype=np.float64).ravel()
        if indptr_arr.size != nrows + 1:
            raise ShapeError(
                f"indptr must have length rows+1 = {nrows + 1}, got {indptr_arr.size}"
            )
        if indptr_arr[0] != 0 or indptr_arr[-1] != indices_arr.size:
            raise ValidationError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(indptr_arr) < 0):
            raise ValidationError("indptr must be non-decreasing")
        if data_arr.size != indices_arr.size:
            raise ShapeError("data and indices must have equal length")
        if indices_arr.size and (indices_arr.min() < 0 or indices_arr.max() >= ncols):
            raise ValidationError("column index out of bounds")
        object.__setattr__(self, "shape", (nrows, ncols))
        object.__setattr__(self, "indptr", indptr_arr)
        object.__setattr__(self, "indices", indices_arr)
        object.__setattr__(self, "data", data_arr)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, dense: np.ndarray, *, tolerance: float = 0.0) -> "CSRMatrix":
        """Build a CSR matrix from a dense array, dropping entries ``<= tolerance`` in magnitude."""
        arr = np.asarray(dense, dtype=np.float64)
        if arr.ndim != 2:
            raise ShapeError(f"dense input must be 2-D, got ndim={arr.ndim}")
        mask = np.abs(arr) > tolerance
        indptr = np.zeros(arr.shape[0] + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(mask.sum(axis=1))
        rows, cols = np.nonzero(mask)
        return cls(arr.shape, indptr, cols, arr[rows, cols])

    @classmethod
    def eye(cls, n: int) -> "CSRMatrix":
        """The ``n x n`` identity matrix."""
        if n <= 0:
            raise ShapeError(f"n must be positive, got {n}")
        indptr = np.arange(n + 1, dtype=np.int64)
        return cls((n, n), indptr, np.arange(n, dtype=np.int64), np.ones(n))

    @classmethod
    def zeros(cls, shape: tuple[int, int]) -> "CSRMatrix":
        """An all-zero matrix of the given shape."""
        return cls(shape, np.zeros(int(shape[0]) + 1, dtype=np.int64), np.empty(0, dtype=np.int64), np.empty(0))

    @classmethod
    def ones(cls, shape: tuple[int, int]) -> "CSRMatrix":
        """The dense all-ones matrix stored in CSR form (used for W* blocks)."""
        nrows, ncols = int(shape[0]), int(shape[1])
        indptr = np.arange(0, nrows * ncols + 1, ncols, dtype=np.int64)
        indices = np.tile(np.arange(ncols, dtype=np.int64), nrows)
        return cls((nrows, ncols), indptr, indices, np.ones(nrows * ncols))

    # ------------------------------------------------------------------ #
    # properties and row access
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.size)

    @property
    def density(self) -> float:
        """Fraction of entries stored: ``nnz / (rows * cols)``."""
        return self.nnz / (self.shape[0] * self.shape[1])

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(column_indices, values)`` of row ``i`` as views."""
        if not 0 <= i < self.shape[0]:
            raise ValidationError(f"row index out of bounds: {i}")
        start, stop = self.indptr[i], self.indptr[i + 1]
        return self.indices[start:stop], self.data[start:stop]

    def row_degrees(self) -> np.ndarray:
        """Out-degree (stored entries) of each row."""
        return np.diff(self.indptr)

    def col_degrees(self) -> np.ndarray:
        """In-degree (stored entries) of each column."""
        degrees = np.zeros(self.shape[1], dtype=np.int64)
        np.add.at(degrees, self.indices, 1)
        return degrees

    def is_binary(self) -> bool:
        """True if every stored value equals 1 (a pure topology matrix)."""
        return bool(np.all(self.data == 1.0))

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Materialize as a dense 2-D float array."""
        dense = np.zeros(self.shape, dtype=np.float64)
        row_ids = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        dense[row_ids, self.indices] = self.data
        return dense

    def to_coo(self) -> "COOMatrix":
        """Convert to COO format."""
        from repro.sparse.coo import COOMatrix

        row_ids = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return COOMatrix(self.shape, row_ids, self.indices.copy(), self.data.copy())

    def with_data(self, data: np.ndarray) -> "CSRMatrix":
        """Return a matrix with the same sparsity pattern but new values."""
        return CSRMatrix(self.shape, self.indptr, self.indices, data)

    def astype_binary(self) -> "CSRMatrix":
        """Return the same pattern with every value set to 1."""
        return self.with_data(np.ones(self.nnz))

    def scale(self, factor: float) -> "CSRMatrix":
        """Return the matrix with every stored value multiplied by ``factor``."""
        return self.with_data(self.data * float(factor))

    # ------------------------------------------------------------------ #
    # comparisons
    # ------------------------------------------------------------------ #
    def allclose(self, other: "CSRMatrix", *, atol: float = 1e-12) -> bool:
        """Numerically compare two CSR matrices entry-wise (via dense)."""
        if self.shape != other.shape:
            return False
        return bool(np.allclose(self.to_dense(), other.to_dense(), atol=atol))

    def same_pattern(self, other: "CSRMatrix") -> bool:
        """True if both matrices have the identical sparsity pattern."""
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.4g})"
        )
