"""ASCII rendering of topologies and surfaces.

Matplotlib is deliberately not a dependency; the paper's small figures
(the N=(2,2,2) topology of Fig. 1, adjacency-matrix block structure of
Fig. 4, the density surface of Fig. 7) render adequately as text, which
also makes benchmark output self-contained in CI logs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sparse.csr import CSRMatrix
from repro.topology.fnnt import FNNT

_SHADES = " .:-=+*#%@"


def render_adjacency(matrix: CSRMatrix | np.ndarray, *, filled: str = "#", empty: str = ".") -> str:
    """Render a 0/1 adjacency (sub)matrix as a grid of characters.

    >>> from repro.core.permutation import cyclic_permutation_matrix
    >>> print(render_adjacency(cyclic_permutation_matrix(3)))
    .#.
    ..#
    #..
    """
    dense = matrix.to_dense() if isinstance(matrix, CSRMatrix) else np.asarray(matrix)
    if dense.ndim != 2:
        raise ValidationError("expected a 2-D matrix")
    rows = []
    for row in dense:
        rows.append("".join(filled if value != 0 else empty for value in row))
    return "\n".join(rows)


def render_topology(topology: FNNT, *, max_nodes_per_layer: int = 16) -> str:
    """Render a small layered topology as a layer-by-layer edge listing.

    Layers wider than ``max_nodes_per_layer`` are summarized instead of
    drawn (full drawings of RadiX-Nets at realistic sizes are unreadable).
    """
    lines = [f"topology {topology.name}: layers {topology.layer_sizes}"]
    for index, submatrix in enumerate(topology.submatrices):
        rows, cols = submatrix.shape
        if max(rows, cols) > max_nodes_per_layer:
            lines.append(
                f"  layer {index}->{index + 1}: {submatrix.nnz} edges "
                f"({rows}x{cols}, density {submatrix.density:.3f})"
            )
            continue
        lines.append(f"  layer {index}->{index + 1}:")
        coo = submatrix.to_coo().coalesce()
        per_source: dict[int, list[int]] = {}
        for r, c in zip(coo.rows, coo.cols):
            per_source.setdefault(int(r), []).append(int(c))
        for source in sorted(per_source):
            targets = ",".join(str(t) for t in sorted(per_source[source]))
            lines.append(f"    {source} -> {targets}")
    return "\n".join(lines)


def heatmap(
    values: np.ndarray,
    *,
    row_labels: list[str] | None = None,
    col_labels: list[str] | None = None,
    log_scale: bool = False,
) -> str:
    """Render a 2-D array as a text heatmap using shade characters.

    With ``log_scale`` the shading is applied to ``log10`` of the values,
    which is how the paper's Figure 7 density surface (spanning many orders
    of magnitude) stays readable.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 2:
        raise ValidationError("heatmap expects a 2-D array")
    display = arr.copy()
    if log_scale:
        positive = display[display > 0]
        floor = positive.min() if positive.size else 1e-12
        display = np.log10(np.clip(display, floor, None))
    lo, hi = float(display.min()), float(display.max())
    span = hi - lo if hi > lo else 1.0
    normalized = (display - lo) / span
    indices = np.clip((normalized * (len(_SHADES) - 1)).round().astype(int), 0, len(_SHADES) - 1)
    lines = []
    if col_labels is not None:
        header = "      " + " ".join(f"{label:>6s}" for label in col_labels)
        lines.append(header)
    for i, row in enumerate(indices):
        label = row_labels[i] if row_labels is not None else str(i)
        cells = " ".join(f"{_SHADES[j] * 6}" for j in row)
        lines.append(f"{label:>5s} {cells}")
    return "\n".join(lines)
