"""Text-mode visualization: topology diagrams, heatmaps, report tables."""

from repro.viz.ascii import render_topology, render_adjacency, heatmap
from repro.viz.report import format_table, format_report_rows

__all__ = [
    "render_topology",
    "render_adjacency",
    "heatmap",
    "format_table",
    "format_report_rows",
]
