"""Plain-text report tables (used by benchmarks and examples)."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import ValidationError


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Format a fixed-width text table.

    >>> print(format_table(["a", "b"], [[1, 2.5], ["x", "y"]]))
    a  b
    -  ---
    1  2.5
    x  y
    """
    if not headers:
        raise ValidationError("headers must be non-empty")
    string_rows = [[_format_cell(cell) for cell in row] for row in rows]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(str(header)), *(len(row[i]) for row in string_rows)) if string_rows else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))).rstrip(),
    ]
    for row in string_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))).rstrip())
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_report_rows(rows: Sequence[Mapping[str, object]]) -> str:
    """Format a list of dictionaries (e.g. ``TopologyReport.as_row()``) as a table."""
    if not rows:
        raise ValidationError("rows must be non-empty")
    headers = list(rows[0].keys())
    return format_table(headers, [[row.get(h, "") for h in headers] for row in rows])
