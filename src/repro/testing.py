"""Shared test/benchmark fixtures importable as a real module.

Historically the test suite kept its shared spec panel in
``tests/conftest.py`` and imported it with ``from conftest import ...``.
That import resolves whichever ``conftest.py`` pytest put on ``sys.path``
first -- with both ``tests/`` and ``benchmarks/`` collected it picked
``benchmarks/conftest.py`` and the suite failed to even collect.  The
shared data now lives here, in the package namespace, where imports are
unambiguous from tests, benchmarks, and downstream users alike.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix

# A panel of admissible (systems, widths) pairs reused by parametrized
# tests: every entry satisfies the shared-product constraint (each
# system's capacity divides into the first one's N') and the width-list
# length rule (one width per node layer).
ADMISSIBLE_SPECS: list[tuple[list[tuple[int, ...]], list[int]]] = [
    ([(2, 2), (2, 2)], [1, 2, 2, 2, 1]),
    ([(2, 2), (4,)], [1, 3, 3, 1]),
    ([(3, 3), (9,)], [2, 2, 2, 2]),
    ([(2, 3), (6,)], [1, 2, 2, 1]),
    ([(2, 2, 2), (4, 2)], [1, 1, 1, 2, 2, 1]),
    ([(4,), (2, 2)], [1, 2, 2, 1]),
    ([(6,)], [1, 1]),
    ([(2, 2), (2,)], [1, 2, 2, 1]),
    ([(3, 4), (12,), (6, 2)], [1, 1, 2, 2, 1, 1]),
]


def random_csr(
    shape: tuple[int, int], density: float, seed: int
) -> tuple[CSRMatrix, np.ndarray]:
    """A random sparse matrix and its dense equivalent, for kernel parity tests."""
    rng = np.random.default_rng(seed)
    dense = rng.random(shape) * (rng.random(shape) < density)
    return CSRMatrix.from_dense(dense), dense
