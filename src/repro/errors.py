"""Exception hierarchy for the :mod:`repro` package.

All library-specific failures derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being
able to distinguish configuration problems from numerical/shape problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad radix list, bad widths, ...)."""


class ConstraintError(ValidationError):
    """A RadiX-Net admissibility constraint was violated.

    The paper requires (Section III.A) that all mixed-radix systems except
    possibly the last share the same product ``N'`` and that the product of
    the last system divides ``N'``.  Violations raise this error.
    """


class UnknownBackendError(ValidationError):
    """A sparse backend was requested by a name that is not usable.

    Raised both for names that were never registered and for known
    optional tiers that are unavailable in this environment (e.g.
    ``numba`` or ``scipy`` when the package is not installed).  The CLI
    maps this to exit code 2 (an argument error, like argparse's own),
    with a one-line message listing ``available_backends()``.
    """


class ShapeError(ReproError, ValueError):
    """Matrix/vector shapes are inconsistent for the requested operation."""


class TopologyError(ReproError):
    """An FNNT is malformed (empty layer, zero-out-degree interior node, ...)."""


class ConvergenceError(ReproError):
    """An iterative routine (training, search) failed to converge."""


class SerializationError(ReproError):
    """A topology or model file could not be read or written."""


class ServeError(ReproError):
    """A serving-subsystem failure (closed batcher, protocol violation,
    unreachable server, ...) -- see :mod:`repro.serve`."""
