"""Cyclic permutation matrices (paper equation (2)).

The mixed-radix adjacency submatrices of equation (1) are sums of powers
of an ``N' x N'`` cyclic permutation matrix.  Two orientations appear in
the paper:

* the *textual* construction ("create edges from node ``j`` in ``U_{i-1}``
  to node ``j + n * nu_i (mod N')`` in ``U_i``"), which corresponds to the
  **up-shift** matrix ``C`` with ``C[j, (j + 1) mod N'] = 1``;
* the displayed matrix of equation (2), which is the transpose (down-shift)
  ``P`` with ``P[j, (j - 1) mod N'] = 1``.

The two generate transposed submatrices, i.e. the same topology with the
roles of the layers' node labels negated modulo ``N'`` -- all graph
properties (regularity, symmetry, path counts, density) are identical.  We
take the textual orientation as primary (:func:`cyclic_permutation_matrix`
with ``offset=+1``) and expose the displayed form as
:func:`paper_permutation_matrix` for fidelity tests.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_positive_int


def cyclic_permutation_matrix(n: int, offset: int = 1) -> CSRMatrix:
    """The ``n x n`` cyclic permutation matrix with ``M[j, (j + offset) mod n] = 1``.

    ``offset`` may be any integer (negative offsets shift the other way);
    powers of the unit-offset matrix satisfy
    ``cyclic_permutation_matrix(n, k) == matrix_power(cyclic_permutation_matrix(n, 1), k)``
    for ``k >= 0``.
    """
    n = check_positive_int(n, "n")
    columns = (np.arange(n, dtype=np.int64) + int(offset)) % n
    indptr = np.arange(n + 1, dtype=np.int64)
    return CSRMatrix((n, n), indptr, columns, np.ones(n))


def paper_permutation_matrix(n: int) -> CSRMatrix:
    """The permutation matrix exactly as displayed in the paper's equation (2).

    First row is ``(0, ..., 0, 1)`` and the remaining rows carry the
    identity ``I_{n-1}`` in their leading columns, i.e.
    ``P[j, (j - 1) mod n] = 1``.  This equals
    ``cyclic_permutation_matrix(n, offset=-1)`` and is the transpose of the
    unit up-shift matrix.
    """
    return cyclic_permutation_matrix(n, offset=-1)


def permutation_power(n: int, exponent: int) -> CSRMatrix:
    """``C^exponent`` for the unit up-shift matrix ``C``, computed in closed form.

    Avoids repeated SpGEMM: the power of a cyclic shift is simply a cyclic
    shift by ``exponent``.
    """
    return cyclic_permutation_matrix(n, offset=int(exponent))
