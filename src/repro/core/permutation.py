"""Cyclic permutation matrices (paper equation (2)).

The mixed-radix adjacency submatrices of equation (1) are sums of powers
of an ``N' x N'`` cyclic permutation matrix.  Two orientations appear in
the paper:

* the *textual* construction ("create edges from node ``j`` in ``U_{i-1}``
  to node ``j + n * nu_i (mod N')`` in ``U_i``"), which corresponds to the
  **up-shift** matrix ``C`` with ``C[j, (j + 1) mod N'] = 1``;
* the displayed matrix of equation (2), which is the transpose (down-shift)
  ``P`` with ``P[j, (j - 1) mod N'] = 1``.

The two generate transposed submatrices, i.e. the same topology with the
roles of the layers' node labels negated modulo ``N'`` -- all graph
properties (regularity, symmetry, path counts, density) are identical.  We
take the textual orientation as primary (:func:`cyclic_permutation_matrix`
with ``offset=+1``) and expose the displayed form as
:func:`paper_permutation_matrix` for fidelity tests.

Beyond the paper's cyclic shifts, this module also carries the *general*
permutation primitives used by the Graph Challenge generator to
decorrelate consecutive layers: :func:`invert_permutation`,
:func:`column_permutation_matrix`, and the sparse column selection
:func:`permute_csr_columns` (the O(nnz) replacement for
``to_dense()[:, permutation]``, dispatched through the backends via
:func:`repro.sparse.ops.permute_columns`).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_positive_int


def cyclic_permutation_matrix(n: int, offset: int = 1) -> CSRMatrix:
    """The ``n x n`` cyclic permutation matrix with ``M[j, (j + offset) mod n] = 1``.

    ``offset`` may be any integer (negative offsets shift the other way);
    powers of the unit-offset matrix satisfy
    ``cyclic_permutation_matrix(n, k) == matrix_power(cyclic_permutation_matrix(n, 1), k)``
    for ``k >= 0``.
    """
    n = check_positive_int(n, "n")
    columns = (np.arange(n, dtype=np.int64) + int(offset)) % n
    indptr = np.arange(n + 1, dtype=np.int64)
    return CSRMatrix((n, n), indptr, columns, np.ones(n))


def paper_permutation_matrix(n: int) -> CSRMatrix:
    """The permutation matrix exactly as displayed in the paper's equation (2).

    First row is ``(0, ..., 0, 1)`` and the remaining rows carry the
    identity ``I_{n-1}`` in their leading columns, i.e.
    ``P[j, (j - 1) mod n] = 1``.  This equals
    ``cyclic_permutation_matrix(n, offset=-1)`` and is the transpose of the
    unit up-shift matrix.
    """
    return cyclic_permutation_matrix(n, offset=-1)


def permutation_power(n: int, exponent: int) -> CSRMatrix:
    """``C^exponent`` for the unit up-shift matrix ``C``, computed in closed form.

    Avoids repeated SpGEMM: the power of a cyclic shift is simply a cyclic
    shift by ``exponent``.
    """
    return cyclic_permutation_matrix(n, offset=int(exponent))


# --------------------------------------------------------------------------- #
# general (non-cyclic) permutations
# --------------------------------------------------------------------------- #
def invert_permutation(permutation: np.ndarray) -> np.ndarray:
    """The inverse of a permutation of ``0..n-1``, in O(n).

    ``inv[permutation[j]] == j`` for every ``j``, so applying
    ``permutation`` and then ``inv`` (as column selections) round-trips a
    matrix exactly.  Equivalent to ``np.argsort(permutation)`` without the
    sort.
    """
    perm = np.asarray(permutation, dtype=np.int64).ravel()
    inverse = np.empty(perm.size, dtype=np.int64)
    inverse[perm] = np.arange(perm.size, dtype=np.int64)
    return inverse


def column_permutation_matrix(permutation: np.ndarray) -> CSRMatrix:
    """The permutation matrix ``P`` with ``A @ P == A[:, permutation]``.

    ``P[i, j] = 1`` iff ``i == permutation[j]``; as canonical CSR, row
    ``i`` holds its single entry at column ``inverse[i]``.  Used by the
    fidelity tests to pin :func:`permute_csr_columns` against an actual
    SpGEMM with this matrix.
    """
    inverse = invert_permutation(permutation)
    n = inverse.size
    indptr = np.arange(n + 1, dtype=np.int64)
    return CSRMatrix((n, n), indptr, inverse, np.ones(n))


def permute_csr_columns(a: CSRMatrix, permutation: np.ndarray) -> CSRMatrix:
    """Sparse column selection ``a[:, permutation]`` without densifying.

    The CSR equivalent of ``a.to_dense()[:, permutation]``: every stored
    entry at column ``c`` moves to column ``inverse[c]``, and entries are
    re-sorted within their rows to restore canonical form.  Runs in
    O(nnz log nnz) time and O(nnz) memory -- never an ``N x N`` dense
    buffer -- and preserves the row pointer (per-row degrees are
    invariant under a column permutation).

    Unlike the dense round-trip, explicitly stored zeros are *kept* (this
    is a pure reordering of stored entries, like transpose).

    This is the shared engine behind the ``vectorized`` backend's
    ``permute_columns`` kernel and the generic dispatch fallback in
    :func:`repro.sparse.ops.permute_columns`; the ``permutation`` is
    assumed valid (the dispatch layer validates it once).
    """
    if a.nnz == 0:
        return a
    inverse = invert_permutation(permutation)
    cols = inverse[a.indices]
    row_ids = np.repeat(
        np.arange(a.shape[0], dtype=np.int64), np.diff(a.indptr)
    )
    order = np.lexsort((cols, row_ids))
    return CSRMatrix(a.shape, a.indptr, cols[order], a.data[order])
