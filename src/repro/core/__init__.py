"""The RadiX-Net construction (the paper's primary contribution).

Modules
-------
``permutation``
    Cyclic permutation matrices (paper eq. (2)) in CSR form.
``mixed_radix_topology``
    The mixed-radix topology induced by a single mixed-radix numeral
    system (paper eq. (1), Figure 1).
``kronecker``
    Kronecker expansion of adjacency submatrices with dense layer widths
    (paper eq. (3), Figure 5).
``radixnet``
    The full generator (paper Figure 6): constraint validation, extended
    mixed-radix concatenation, Kronecker expansion, and the
    :class:`RadixNetSpec` convenience wrapper.
``density``
    The density theory of equations (4), (5), (6) and Figure 7.
``theory``
    Predictions of Lemma 1 / Lemma 2 / Theorem 1 (symmetry and exact
    per-pair path counts) used for verification.
``designer``
    Parameter search: find admissible ``(N*, D)`` hitting target layer
    widths or target densities.
"""

from repro.core.permutation import cyclic_permutation_matrix, paper_permutation_matrix
from repro.core.mixed_radix_topology import (
    mixed_radix_submatrix,
    mixed_radix_topology,
)
from repro.core.kronecker import kron_expand_submatrices
from repro.core.radixnet import (
    RadixNetSpec,
    validate_radixnet_constraints,
    generate_extended_mixed_radix,
    generate_radixnet,
)
from repro.core.density import (
    exact_density,
    approximate_density,
    asymptotic_density,
    density_surface,
)
from repro.core.theory import (
    predicted_emr_path_count,
    predicted_radixnet_path_count,
    verify_theorem_1,
)
from repro.core.designer import (
    design_for_widths,
    design_for_density,
    DesignResult,
)

__all__ = [
    "cyclic_permutation_matrix",
    "paper_permutation_matrix",
    "mixed_radix_submatrix",
    "mixed_radix_topology",
    "kron_expand_submatrices",
    "RadixNetSpec",
    "validate_radixnet_constraints",
    "generate_extended_mixed_radix",
    "generate_radixnet",
    "exact_density",
    "approximate_density",
    "asymptotic_density",
    "density_surface",
    "predicted_emr_path_count",
    "predicted_radixnet_path_count",
    "verify_theorem_1",
    "design_for_widths",
    "design_for_density",
    "DesignResult",
]
