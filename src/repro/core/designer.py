"""Parameter search for RadiX-Net specifications.

The paper emphasizes that RadiX-Nets allow "diverse layer architectures":
given desired layer widths (e.g. an MLP shaped 256-512-512-10) or a target
density, there are many admissible ``(N*, D)`` pairs.  This module searches
that space:

* :func:`design_for_widths` -- find a specification whose expanded layer
  sizes ``D_i * N'`` match (or dominate) requested widths, to drive the
  neural-network training experiments;
* :func:`design_for_density` -- find a specification with exact density as
  close as possible to a requested value, used by the density ablations.

The searches are exhaustive over small factorization spaces (the relevant
``N'`` values are modest) and deterministic.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.core.density import exact_density
from repro.core.radixnet import RadixNetSpec
from repro.numeral.factorization import balanced_radix_list, divisors, radix_lists_with_product
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class DesignResult:
    """Outcome of a designer search."""

    spec: RadixNetSpec
    target: tuple[float, ...] | float
    achieved: tuple[int, ...] | float
    error: float

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DesignResult(spec={self.spec!r}, target={self.target!r}, "
            f"achieved={self.achieved!r}, error={self.error:.4g})"
        )


def design_for_widths(
    layer_widths: Sequence[int],
    *,
    radices_per_system: int = 2,
    max_n_prime: int | None = None,
) -> DesignResult:
    """Find a RadiX-Net spec whose expanded layer sizes match ``layer_widths``.

    The expanded size of layer ``i`` is ``D_i * N'``; for each candidate
    ``N'`` (a common divisor of every requested width, bounded by
    ``max_n_prime``) we set ``D_i = width_i / N'`` and build one mixed-radix
    system of ``radices_per_system`` balanced radices per pair of adjacent
    hidden layers.  The candidate with the largest feasible ``N'``
    (sparsest construction) is returned.

    Raises :class:`ValidationError` if no admissible ``N' >= 2`` exists
    (e.g. the widths are coprime).
    """
    widths = [check_positive_int(w, "layer width") for w in layer_widths]
    if len(widths) < 2:
        raise ValidationError("at least two layer widths are required")
    common = math.gcd(*widths)
    if max_n_prime is not None:
        max_n_prime = check_positive_int(max_n_prime, "max_n_prime")
    candidates = [d for d in divisors(common) if d >= 2]
    if max_n_prime is not None:
        candidates = [d for d in candidates if d <= max_n_prime]
    if not candidates:
        raise ValidationError(
            f"no common divisor >= 2 of the requested widths {tuple(widths)} "
            "is available for N'"
        )
    num_edge_layers = len(widths) - 1
    best: DesignResult | None = None
    for n_prime in sorted(candidates, reverse=True):
        try:
            lengths = _system_lengths(num_edge_layers, radices_per_system)
            systems = [
                tuple(balanced_radix_list(n_prime, length)) for length in lengths
            ]
        except ValidationError:
            continue
        d = [w // n_prime for w in widths]
        spec = RadixNetSpec(systems, d, name=f"designed-N{n_prime}")
        achieved = tuple(s for s in spec.layer_sizes)
        error = float(sum(abs(a - t) for a, t in zip(achieved, widths)))
        result = DesignResult(spec=spec, target=tuple(float(w) for w in widths), achieved=achieved, error=error)
        if error == 0.0:
            return result
        if best is None or error < best.error:
            best = result
    if best is None:
        raise ValidationError(
            "no admissible RadiX-Net specification found for the requested widths"
        )
    return best


def _system_lengths(num_edge_layers: int, radices_per_system: int) -> list[int]:
    """Split ``num_edge_layers`` radices into systems of ``radices_per_system``.

    The trailing system absorbs the remainder (it may be shorter), which is
    admissible because only the last system's product is allowed to differ.
    """
    radices_per_system = check_positive_int(radices_per_system, "radices_per_system")
    full, remainder = divmod(num_edge_layers, radices_per_system)
    lengths = [radices_per_system] * full
    if remainder:
        lengths.append(remainder)
    if not lengths:
        raise ValidationError("num_edge_layers must be >= 1")
    return lengths


def design_for_density(
    target_density: float,
    num_layers: int,
    *,
    max_n_prime: int = 256,
    width: int = 1,
) -> DesignResult:
    """Find a single-system RadiX-Net spec with density close to ``target_density``.

    Searches single mixed-radix systems (every radix list with product up to
    ``max_n_prime`` and length ``num_layers``) with uniform dense widths and
    returns the spec minimizing ``|exact_density - target|``.
    """
    if not 0.0 < target_density <= 1.0:
        raise ValidationError(f"target_density must be in (0, 1], got {target_density}")
    num_layers = check_positive_int(num_layers, "num_layers")
    width = check_positive_int(width, "width")
    best: DesignResult | None = None
    for n_prime in range(2, max_n_prime + 1):
        for radices in radix_lists_with_product(n_prime, max_length=num_layers):
            if len(radices) != num_layers:
                continue
            spec = RadixNetSpec([radices], [width] * (num_layers + 1), name=f"density-{n_prime}")
            achieved = exact_density(spec)
            error = abs(achieved - target_density)
            if best is None or error < best.error:
                best = DesignResult(
                    spec=spec, target=float(target_density), achieved=achieved, error=error
                )
    if best is None:
        raise ValidationError(
            "no specification found; increase max_n_prime or reduce num_layers"
        )
    return best
