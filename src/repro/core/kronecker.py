"""Kronecker expansion of adjacency submatrices (paper equation (3), Figure 5).

The final step of the RadiX-Net construction replaces every extended
mixed-radix adjacency submatrix ``W_i`` by ``W*_i (x) W_i`` where ``W*_i``
is the all-ones ``D_{i-1} x D_i`` adjacency submatrix of an arbitrary
dense DNN with layer widths ``D = (D_0, ..., D_M)``.  The expanded layer
``i`` therefore has ``D_i * N'`` nodes, and the dense widths become a free
set of parameters that diversify the family without disturbing symmetry.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.backends import active_backend
from repro.errors import ValidationError
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_positive_int


def kron_expand_submatrices(
    submatrices: Sequence[CSRMatrix],
    widths: Sequence[int],
) -> list[CSRMatrix]:
    """Apply equation (3): ``W_i -> 1_{D_{i-1}, D_i} (x) W_i`` for every level.

    The Kronecker products run on the active sparse backend
    (:mod:`repro.backends`), so large expansions benefit from the
    compiled ``scipy`` kernels while small ones can be cross-checked
    against ``reference``.

    Parameters
    ----------
    submatrices:
        The extended mixed-radix adjacency submatrices ``(W_1, ..., W_M)``.
    widths:
        Dense layer widths ``(D_0, ..., D_M)``; must have exactly one more
        entry than ``submatrices``.
    """
    if len(widths) != len(submatrices) + 1:
        raise ValidationError(
            f"widths must have {len(submatrices) + 1} entries "
            f"(one per node layer), got {len(widths)}"
        )
    d = [check_positive_int(w, f"widths[{i}]") for i, w in enumerate(widths)]
    backend = active_backend()
    expanded = []
    for i, w in enumerate(submatrices):
        ones_block = CSRMatrix.ones((d[i], d[i + 1]))
        expanded.append(backend.kron(ones_block, w))
    return expanded


def kron_node_index(dense_index: int, radix_index: int, n_prime: int) -> int:
    """Flat node index of the pair (dense copy, mixed-radix node) after expansion.

    After ``1_{D x D'} (x) W`` the node ``(dense_index, radix_index)`` of an
    expanded layer occupies flat position ``dense_index * N' + radix_index``
    -- the standard Kronecker row ordering.  Exposed so downstream code
    (e.g. mapping trained weights back onto mixed-radix coordinates) does
    not re-derive the convention.
    """
    if not 0 <= radix_index < n_prime:
        raise ValidationError(
            f"radix_index must be in [0, {n_prime - 1}], got {radix_index}"
        )
    if dense_index < 0:
        raise ValidationError(f"dense_index must be >= 0, got {dense_index}")
    return int(dense_index) * int(n_prime) + int(radix_index)


def kron_node_coordinates(flat_index: int, n_prime: int) -> tuple[int, int]:
    """Inverse of :func:`kron_node_index`: recover (dense copy, mixed-radix node)."""
    if flat_index < 0:
        raise ValidationError(f"flat_index must be >= 0, got {flat_index}")
    return int(flat_index) // int(n_prime), int(flat_index) % int(n_prime)


def expanded_layer_sizes(widths: Sequence[int], n_prime: int) -> tuple[int, ...]:
    """Node counts of the expanded topology: ``D_i * N'`` per layer."""
    n_prime = check_positive_int(n_prime, "n_prime")
    return tuple(check_positive_int(w, "width") * n_prime for w in widths)


def dense_reference_edge_count(widths: Sequence[int], n_prime: int) -> int:
    """Edge count of the fully-connected FNNT on the expanded layer sizes.

    This is the denominator of the paper's density definition for a
    RadiX-Net: ``sum_i (D_{i-1} N') (D_i N')``.
    """
    sizes = expanded_layer_sizes(widths, n_prime)
    return int(sum(int(sizes[i]) * int(sizes[i + 1]) for i in range(len(sizes) - 1)))
