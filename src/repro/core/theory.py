"""Predictions of the paper's Lemma 1, Lemma 2, and Theorem 1.

* Lemma 1: a mixed-radix topology is symmetric with exactly **one** path
  between every (input, output) pair.
* Lemma 2: an extended mixed-radix topology built from ``M`` systems that
  all share product ``N'`` is symmetric with ``(N')^(M-1)`` paths per pair.
* Theorem 1: a RadiX-Net is symmetric with
  ``(N')^(M-1) * prod_{i=1..Mbar-1} D_i`` paths per pair.

The paper allows the **last** system's product ``Q`` to be a proper
divisor of ``N'``; in that case the constants above generalize to
``(N')^(M-2) * Q`` and ``(N')^(M-2) * Q * prod D_i`` respectively (the
last system contributes ``Q`` rather than ``N'`` fan-out), which reduces
to the paper's formula when ``Q = N'``.  The verification helpers below
compute the generalized constant and check it against the actual chain
product of the constructed topology.
"""

from __future__ import annotations

import contextlib
import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

import repro.backends as backends
from repro.core.radixnet import RadixNetSpec, SystemLike, generate_from_spec
from repro.numeral.mixed_radix import MixedRadixSystem
from repro.topology.fnnt import FNNT
from repro.topology.properties import path_count_matrix


def _backend_scope(backend: str | None):
    """Context running the Theorem-1 chain products on a chosen backend."""
    return backends.use(backend) if backend is not None else contextlib.nullcontext()


def predicted_mixed_radix_path_count() -> int:
    """Lemma 1: every (input, output) pair of a mixed-radix topology has one path."""
    return 1


def predicted_emr_path_count(systems: Sequence[SystemLike]) -> int:
    """Lemma 2 path count for an extended mixed-radix topology.

    Returns ``(N')^(M-2) * Q`` where ``Q`` is the last system's product;
    this equals the paper's ``(N')^(M-1)`` whenever ``Q = N'``.
    For a single system the count is 1 when ``Q = N'``; if a single system
    under-fills ``N'`` the topology is not even path-connected and the
    prediction does not apply.
    """
    mrs = [s if isinstance(s, MixedRadixSystem) else MixedRadixSystem(s) for s in systems]
    if len(mrs) == 1:
        return 1
    n_prime = mrs[0].capacity
    q = mrs[-1].capacity
    return int(n_prime ** (len(mrs) - 2) * q)


def predicted_radixnet_path_count(spec: RadixNetSpec) -> int:
    """Theorem 1 path count (generalized to a divisor-product last system).

    ``(N')^(M-2) * Q * prod_{i=1..Mbar-1} D_i`` -- the product runs over the
    *interior* dense widths only (``D_0`` and ``D_Mbar`` excluded), exactly
    as in the paper's statement.
    """
    emr = predicted_emr_path_count(spec.systems)
    interior = spec.widths[1:-1]
    return int(emr * math.prod(interior)) if interior else int(emr)


@dataclass(frozen=True)
class TheoremCheck:
    """Result of verifying a symmetry/path-count prediction on a topology."""

    predicted_paths: int
    measured_min: int
    measured_max: int
    symmetric: bool
    matches_prediction: bool

    @property
    def measured_paths(self) -> int:
        """The common path count when the topology is symmetric."""
        return self.measured_min


def _check_against(topology: FNNT, predicted: int) -> TheoremCheck:
    counts = path_count_matrix(topology).to_dense()
    measured_min = int(round(float(counts.min())))
    measured_max = int(round(float(counts.max())))
    symmetric = bool(measured_min == measured_max and measured_min > 0)
    return TheoremCheck(
        predicted_paths=int(predicted),
        measured_min=measured_min,
        measured_max=measured_max,
        symmetric=symmetric,
        matches_prediction=bool(symmetric and measured_min == int(predicted)),
    )


def verify_lemma_1(system: SystemLike, *, backend: str | None = None) -> TheoremCheck:
    """Verify Lemma 1 on the mixed-radix topology of ``system``.

    ``backend`` optionally pins the sparse backend for the path-count
    chain product (the verification is backend-independent, so running it
    under each registered backend is itself a kernel cross-check).
    """
    from repro.core.mixed_radix_topology import mixed_radix_topology

    with _backend_scope(backend):
        return _check_against(
            mixed_radix_topology(system), predicted_mixed_radix_path_count()
        )


def verify_lemma_2(
    systems: Sequence[SystemLike], *, backend: str | None = None
) -> TheoremCheck:
    """Verify Lemma 2 on the extended mixed-radix topology of ``systems``."""
    from repro.core.radixnet import generate_extended_mixed_radix

    with _backend_scope(backend):
        return _check_against(
            generate_extended_mixed_radix(systems), predicted_emr_path_count(systems)
        )


def verify_theorem_1(
    spec: RadixNetSpec, *, topology: FNNT | None = None, backend: str | None = None
) -> TheoremCheck:
    """Verify Theorem 1 on the RadiX-Net generated from ``spec``.

    ``topology`` may be supplied to avoid regenerating an already-built
    net; ``backend`` pins the sparse backend used for the chain product.
    """
    with _backend_scope(backend):
        net = topology if topology is not None else generate_from_spec(spec)
        return _check_against(net, predicted_radixnet_path_count(spec))


def path_count_spectrum(topology: FNNT) -> dict[int, int]:
    """Histogram of per-pair path counts, ``{path_count: number_of_pairs}``.

    A symmetric topology has a single key; baselines such as random
    Erdos-Renyi layers typically spread over many values (including 0 for
    disconnected pairs), which is the quantitative contrast the analysis
    module reports.
    """
    counts = path_count_matrix(topology).to_dense()
    values, frequencies = np.unique(counts.astype(np.int64), return_counts=True)
    return {int(v): int(f) for v, f in zip(values, frequencies)}
