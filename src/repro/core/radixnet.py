"""The RadiX-Net generator (paper Section III.A, Figure 6).

A RadiX-Net topology is uniquely defined by

* an ordered list ``N* = (N_1, ..., N_M)`` of mixed-radix numeral systems,
  where all systems except possibly the last share a common product ``N'``
  and the last system's product divides ``N'``; and
* an ordered list ``D = (D_0, ..., D_Mbar)`` of positive dense layer
  widths, with ``Mbar = sum_i L_i`` the total number of radices.

The construction:

1. build, for every radix of every system, the ``N' x N'`` mixed-radix
   adjacency submatrix ``W = sum_j C^(j * pv)`` where ``pv`` is the place
   value *within its own system* (the Figure-6 algorithm resets ``pv`` to 1
   at the start of every system);
2. concatenate the resulting mixed-radix topologies output-to-input into an
   *extended mixed-radix (EMR) topology*;
3. Kronecker-expand every submatrix with the all-ones ``D_{i-1} x D_i``
   block (equation (3)).

The result is returned as an :class:`repro.topology.fnnt.FNNT`.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import ConstraintError, ValidationError
from repro.core.kronecker import kron_expand_submatrices
from repro.core.mixed_radix_topology import mixed_radix_submatrices
from repro.numeral.mixed_radix import MixedRadixSystem
from repro.sparse.csr import CSRMatrix
from repro.topology.fnnt import FNNT
from repro.utils.validation import check_positive_int

SystemLike = MixedRadixSystem | Sequence[int]


def _coerce_systems(systems: Sequence[SystemLike]) -> tuple[MixedRadixSystem, ...]:
    if isinstance(systems, (MixedRadixSystem,)) or (
        systems and isinstance(systems[0], (int,))
    ):
        raise ValidationError(
            "radix_systems must be a sequence of mixed-radix systems "
            "(e.g. [(2, 2), (4,)]), not a single system"
        )
    if not systems:
        raise ValidationError("radix_systems must contain at least one system")
    return tuple(
        s if isinstance(s, MixedRadixSystem) else MixedRadixSystem(s) for s in systems
    )


def validate_radixnet_constraints(systems: Sequence[SystemLike]) -> int:
    """Validate the paper's admissibility constraints and return ``N'``.

    Constraint 1: all systems except the last share the same product ``N'``.
    Constraint 2: the last system's product divides ``N'``.

    For a single-system specification ``N'`` is that system's product.
    Raises :class:`ConstraintError` on violation.
    """
    mrs = _coerce_systems(systems)
    if len(mrs) == 1:
        return mrs[0].capacity
    n_prime = mrs[0].capacity
    for index, system in enumerate(mrs[:-1]):
        if system.capacity != n_prime:
            raise ConstraintError(
                f"system {index} has product {system.capacity}, expected the shared "
                f"product N' = {n_prime} (paper constraint 1)"
            )
    last = mrs[-1].capacity
    if n_prime % last != 0:
        raise ConstraintError(
            f"the last system's product {last} must divide N' = {n_prime} "
            "(paper constraint 2)"
        )
    return n_prime


@dataclass(frozen=True)
class RadixNetSpec:
    """A validated RadiX-Net specification ``(N*, D)``.

    Attributes
    ----------
    systems:
        The mixed-radix numeral systems ``N*``.
    widths:
        The dense layer widths ``D`` (length ``total_radices + 1``).
    """

    systems: tuple[MixedRadixSystem, ...]
    widths: tuple[int, ...]
    name: str = field(default="radix-net")

    def __init__(
        self,
        systems: Sequence[SystemLike],
        widths: Sequence[int],
        *,
        name: str = "radix-net",
    ) -> None:
        mrs = _coerce_systems(systems)
        n_prime = validate_radixnet_constraints(mrs)
        total_radices = sum(s.length for s in mrs)
        if len(widths) != total_radices + 1:
            raise ValidationError(
                f"widths must have {total_radices + 1} entries (total radices + 1), "
                f"got {len(widths)}"
            )
        width_tuple = tuple(
            check_positive_int(w, f"widths[{i}]") for i, w in enumerate(widths)
        )
        object.__setattr__(self, "systems", mrs)
        object.__setattr__(self, "widths", width_tuple)
        object.__setattr__(self, "name", str(name))
        object.__setattr__(self, "_n_prime", n_prime)

    # ------------------------------------------------------------------ #
    @property
    def n_prime(self) -> int:
        """The shared product ``N'`` of all but the last system."""
        return self._n_prime  # type: ignore[attr-defined]

    @property
    def num_systems(self) -> int:
        """``M``: the number of mixed-radix numeral systems."""
        return len(self.systems)

    @property
    def total_radices(self) -> int:
        """``Mbar = sum_i L_i``: the number of edge layers in the topology."""
        return sum(s.length for s in self.systems)

    @property
    def flattened_radices(self) -> tuple[int, ...]:
        """The concatenated radix list ``(N_{1,1}, ..., N_{M,L_M})`` of eq. (4)."""
        return tuple(r for s in self.systems for r in s.radices)

    @property
    def last_product(self) -> int:
        """Product of the last system's radices (divides ``N'``)."""
        return self.systems[-1].capacity

    @property
    def layer_sizes(self) -> tuple[int, ...]:
        """Node counts of the generated topology: ``D_i * N'`` per layer."""
        return tuple(d * self.n_prime for d in self.widths)

    def mean_radix(self) -> float:
        """``mu``: the mean of the flattened radix list (eq. (5))."""
        radices = self.flattened_radices
        return sum(radices) / len(radices)

    def radix_variance(self) -> float:
        """Population variance of the flattened radix list."""
        radices = self.flattened_radices
        mean = self.mean_radix()
        return sum((r - mean) ** 2 for r in radices) / len(radices)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        systems = ", ".join(str(tuple(s.radices)) for s in self.systems)
        return f"RadixNetSpec(systems=[{systems}], widths={self.widths}, N'={self.n_prime})"


def emr_submatrices(spec_or_systems: RadixNetSpec | Sequence[SystemLike]) -> list[CSRMatrix]:
    """Adjacency submatrices of the extended mixed-radix topology (before Kronecker).

    Every submatrix is ``N' x N'`` -- including those of the final system,
    whose own product may be a proper divisor of ``N'`` (the Figure-6
    algorithm builds the permutation matrix once, from the shared ``N'``).
    """
    if isinstance(spec_or_systems, RadixNetSpec):
        systems = spec_or_systems.systems
        n_prime = spec_or_systems.n_prime
    else:
        systems = _coerce_systems(spec_or_systems)
        n_prime = validate_radixnet_constraints(systems)
    submatrices: list[CSRMatrix] = []
    for system in systems:
        submatrices.extend(mixed_radix_submatrices(system, modulus=n_prime))
    return submatrices


def generate_extended_mixed_radix(
    systems: Sequence[SystemLike],
    *,
    name: str | None = None,
) -> FNNT:
    """Generate the extended mixed-radix (EMR) topology of ``N*``.

    This is the RadiX-Net with all dense widths equal to 1 (the object of
    the paper's Lemma 2).
    """
    submatrices = emr_submatrices(systems)
    label = name or "extended-mixed-radix"
    return FNNT(submatrices, validate=False, name=label)


def generate_radixnet(
    radix_systems: Sequence[SystemLike],
    widths: Sequence[int],
    *,
    name: str = "radix-net",
) -> FNNT:
    """Generate the RadiX-Net topology for ``(N*, D)`` (paper Figure 6).

    Parameters
    ----------
    radix_systems:
        The ordered mixed-radix numeral systems ``N*``; e.g.
        ``[(2, 2), (2, 2)]`` or ``[MixedRadixSystem((3, 3, 4)), ...]``.
    widths:
        The dense layer widths ``D = (D_0, ..., D_Mbar)`` with
        ``Mbar = total number of radices``.
    name:
        Label attached to the returned :class:`FNNT`.

    Returns
    -------
    FNNT
        The generated topology, with layer sizes ``D_i * N'``.

    Examples
    --------
    >>> net = generate_radixnet([(2, 2), (2, 2)], [1, 2, 2, 2, 1])
    >>> net.layer_sizes
    (4, 8, 8, 8, 4)
    >>> net.is_symmetric()
    True
    """
    spec = RadixNetSpec(radix_systems, widths, name=name)
    return generate_from_spec(spec)


def generate_from_spec(spec: RadixNetSpec) -> FNNT:
    """Generate the topology described by a validated :class:`RadixNetSpec`."""
    base = emr_submatrices(spec)
    expanded = kron_expand_submatrices(base, spec.widths)
    return FNNT(expanded, validate=False, name=spec.name)


def radixnet_edge_count(spec: RadixNetSpec) -> int:
    """Exact edge count of the RadiX-Net without constructing it.

    Layer ``i`` contributes ``D_{i-1} * D_i * N' * Nbar_i`` edges where
    ``Nbar_i`` is the ``i``-th flattened radix -- each of the ``N'`` rows of
    the mixed-radix submatrix stores exactly ``Nbar_i`` entries and the
    Kronecker factor replicates them ``D_{i-1} * D_i`` times.
    """
    radices = spec.flattened_radices
    widths = spec.widths
    return int(
        sum(
            widths[i] * widths[i + 1] * spec.n_prime * radices[i]
            for i in range(len(radices))
        )
    )


def radixnet_dense_edge_count(spec: RadixNetSpec) -> int:
    """Edge count of the fully-connected FNNT on the same layer sizes."""
    sizes = spec.layer_sizes
    return int(sum(sizes[i] * sizes[i + 1] for i in range(len(sizes) - 1)))
