"""Mixed-radix topologies (paper equation (1), Figure 1).

The mixed-radix topology induced by a numeral system
``N = (N_1, ..., N_L)`` has ``L + 1`` layers of ``N'`` nodes each
(``N' = prod(N)``), with edges from node ``j`` in layer ``i-1`` to nodes
``(j + n * nu_i) mod N'`` in layer ``i`` for ``n = 0, ..., N_i - 1``,
where ``nu_i = prod_{k < i} N_k`` is the place value of radix ``i``.

Equivalently (paper eq. (1)) the adjacency submatrix of level ``i`` is

    W_i = sum_{n=0}^{N_i - 1} C^(n * nu_i)

for the cyclic up-shift permutation matrix ``C``.  Figure 1 of the paper
shows the same object as ``N'`` overlapping depth-``L`` decision trees,
one rooted at every node of the input layer; :func:`decision_tree_leaves`
exposes that view for testing and visualization.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.numeral.mixed_radix import MixedRadixSystem
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.topology.fnnt import FNNT


def _coerce_system(system: MixedRadixSystem | Sequence[int]) -> MixedRadixSystem:
    if isinstance(system, MixedRadixSystem):
        return system
    return MixedRadixSystem(system)


def mixed_radix_submatrix(
    system: MixedRadixSystem | Sequence[int],
    level: int,
    *,
    modulus: int | None = None,
) -> CSRMatrix:
    """The adjacency submatrix ``W_{level+1}`` of the mixed-radix topology.

    Parameters
    ----------
    system:
        The mixed-radix numeral system ``N``.
    level:
        0-based radix index (``level = i - 1`` for the paper's ``W_i``).
    modulus:
        Number of nodes per layer.  Defaults to the system's own capacity
        ``N'``; the RadiX-Net generator passes the *shared* ``N'`` here so
        that the final numeral system (whose product merely divides ``N'``)
        still produces ``N' x N'`` submatrices, exactly as in the Figure-6
        algorithm where the permutation matrix is built once from the first
        system's product.
    """
    mrs = _coerce_system(system)
    radix = mrs[level]
    place_value = mrs.place_value(level)
    n_prime = int(modulus) if modulus is not None else mrs.capacity
    # Row j has edges to (j + n * place_value) mod N' for n = 0..radix-1.
    source = np.repeat(np.arange(n_prime, dtype=np.int64), radix)
    offsets = np.tile(np.arange(radix, dtype=np.int64) * place_value, n_prime)
    target = (source + offsets) % n_prime
    return COOMatrix((n_prime, n_prime), source, target, np.ones(source.size)).to_csr()


def mixed_radix_submatrices(
    system: MixedRadixSystem | Sequence[int],
    *,
    modulus: int | None = None,
) -> list[CSRMatrix]:
    """All adjacency submatrices ``(W_1, ..., W_L)`` of the mixed-radix topology."""
    mrs = _coerce_system(system)
    return [
        mixed_radix_submatrix(mrs, level, modulus=modulus)
        for level in range(mrs.length)
    ]


def mixed_radix_topology(
    system: MixedRadixSystem | Sequence[int],
    *,
    modulus: int | None = None,
    name: str | None = None,
) -> FNNT:
    """The mixed-radix topology induced by ``system`` as an :class:`FNNT`.

    >>> net = mixed_radix_topology((2, 2, 2))
    >>> net.layer_sizes
    (8, 8, 8, 8)
    >>> net.is_symmetric()
    True
    """
    mrs = _coerce_system(system)
    label = name or f"mixed-radix-{'x'.join(str(r) for r in mrs.radices)}"
    return FNNT(mixed_radix_submatrices(mrs, modulus=modulus), validate=False, name=label)


def decision_tree_edges(system: MixedRadixSystem | Sequence[int], root: int) -> list[tuple[int, int, int]]:
    """Edges of the single decision tree rooted at input node ``root``.

    Figure 1 of the paper constructs the mixed-radix topology as ``N'``
    overlapping decision trees.  The tree rooted at ``root`` reaches, at
    depth ``i``, the nodes ``(root + v) mod N'`` for every value ``v``
    representable by the first ``i`` radices.  Returns a list of
    ``(level, source_node, target_node)`` tuples.
    """
    mrs = _coerce_system(system)
    n_prime = mrs.capacity
    edges: list[tuple[int, int, int]] = []
    frontier = [int(root) % n_prime]
    for level in range(mrs.length):
        radix = mrs[level]
        place_value = mrs.place_value(level)
        next_frontier: list[int] = []
        for node in frontier:
            for n in range(radix):
                child = (node + n * place_value) % n_prime
                edges.append((level, node, child))
                next_frontier.append(child)
        frontier = next_frontier
    return edges


def decision_tree_leaves(system: MixedRadixSystem | Sequence[int], root: int) -> list[int]:
    """Leaf nodes of the decision tree rooted at ``root``.

    For a full mixed-radix system the leaves are exactly all ``N'`` nodes,
    each reached once -- this is the combinatorial content of Lemma 1
    (exactly one path between every input/output pair).
    """
    mrs = _coerce_system(system)
    edges = decision_tree_edges(mrs, root)
    last_level = mrs.length - 1
    return [target for level, _, target in edges if level == last_level]
