"""Expander-quality metrics.

X-Nets justify their sparse layers through expander-graph theory: a
bipartite layer whose second singular value (equivalently, spectral gap of
the bipartite adjacency operator) is well separated from the first mixes
information between layers quickly.  These metrics let the analysis module
compare mixed-radix layers, Cayley layers, and random layers on an equal
footing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.sparse.csr import CSRMatrix
from repro.topology.fnnt import FNNT


def singular_values(matrix: CSRMatrix | np.ndarray) -> np.ndarray:
    """All singular values of an adjacency submatrix, descending."""
    dense = matrix.to_dense() if isinstance(matrix, CSRMatrix) else np.asarray(matrix, dtype=np.float64)
    if dense.ndim != 2:
        raise ValidationError("expected a 2-D adjacency submatrix")
    return np.linalg.svd(dense, compute_uv=False)


def spectral_gap(matrix: CSRMatrix | np.ndarray, *, normalized: bool = True) -> float:
    """Gap between the top two singular values of a layer's adjacency submatrix.

    For a ``k``-regular bipartite layer the top singular value is ``k``;
    the (normalized) gap ``1 - sigma_2 / sigma_1`` is the expander-mixing
    figure of merit: 1.0 for a perfect expander (e.g. the complete bipartite
    layer), near 0 for a poorly mixing layer.
    """
    sigma = singular_values(matrix)
    if sigma.size == 1:
        return 1.0
    top, second = float(sigma[0]), float(sigma[1])
    if top == 0.0:
        raise ValidationError("adjacency submatrix is identically zero")
    gap = top - second
    return gap / top if normalized else gap


@dataclass(frozen=True)
class ExpansionSummary:
    """Spectral expansion summary of every layer of an FNNT."""

    per_layer_gap: tuple[float, ...]

    @property
    def worst_gap(self) -> float:
        """The smallest (worst) per-layer normalized spectral gap."""
        return min(self.per_layer_gap)

    @property
    def mean_gap(self) -> float:
        """The mean per-layer normalized spectral gap."""
        return float(np.mean(self.per_layer_gap))


def expansion_summary(topology: FNNT) -> ExpansionSummary:
    """Normalized spectral gap of each layer of ``topology``."""
    gaps = tuple(spectral_gap(w) for w in topology.submatrices)
    return ExpansionSummary(per_layer_gap=gaps)
