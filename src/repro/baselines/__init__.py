"""Baseline sparse and dense topology constructions.

RadiX-Net's claims are relative to three families:

* **dense** fully-connected DNN topologies (the reference point of the
  density definition);
* **X-Nets** (Prabhu et al., "Deep Expander Networks"): sparse layers built
  from expander graphs.  Random X-Linear layers pick a fixed number of
  outgoing edges per node at random; *explicit* X-Linear layers are Cayley
  graphs of cyclic groups and therefore require equal adjacent layer
  widths -- the restriction RadiX-Net removes;
* **pruned** networks: a dense network trained and then sparsified by
  magnitude pruning (the classical route to sparse DNNs the paper's
  introduction surveys).

This subpackage also provides expander-quality metrics (spectral gap) used
to compare the families.
"""

from repro.baselines.dense import dense_fnnt
from repro.baselines.cayley import cayley_graph_submatrix, cayley_xnet
from repro.baselines.xnet import random_xnet, explicit_xnet
from repro.baselines.pruning import magnitude_prune_mask, prune_model_to_topology
from repro.baselines.expander import spectral_gap, expansion_summary

__all__ = [
    "dense_fnnt",
    "cayley_graph_submatrix",
    "cayley_xnet",
    "random_xnet",
    "explicit_xnet",
    "magnitude_prune_mask",
    "prune_model_to_topology",
    "spectral_gap",
    "expansion_summary",
]
