"""Dense (fully-connected) FNNT construction.

The paper's density definition is relative to the unique fully-connected
FNNT on a given ordered collection of layer sizes (Fig. 3); this module
provides that reference object.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ValidationError
from repro.sparse.csr import CSRMatrix
from repro.topology.fnnt import FNNT
from repro.utils.validation import check_positive_int


def dense_fnnt(layer_sizes: Sequence[int], *, name: str = "dense") -> FNNT:
    """The unique fully-connected FNNT with the given layer sizes.

    >>> dense_fnnt([3, 5, 2]).num_edges
    25
    """
    sizes = [check_positive_int(s, "layer size") for s in layer_sizes]
    if len(sizes) < 2:
        raise ValidationError("layer_sizes must contain at least two layers")
    submatrices = [
        CSRMatrix.ones((sizes[i], sizes[i + 1])) for i in range(len(sizes) - 1)
    ]
    return FNNT(submatrices, validate=False, name=name)


def dense_edge_count(layer_sizes: Sequence[int]) -> int:
    """Edge count of the fully-connected FNNT: ``sum_i |U_{i-1}| * |U_i|``."""
    sizes = [check_positive_int(s, "layer size") for s in layer_sizes]
    if len(sizes) < 2:
        raise ValidationError("layer_sizes must contain at least two layers")
    return sum(sizes[i] * sizes[i + 1] for i in range(len(sizes) - 1))


def dense_parameter_count(layer_sizes: Sequence[int], *, include_biases: bool = True) -> int:
    """Trainable parameter count of a dense MLP with the given layer sizes."""
    edges = dense_edge_count(layer_sizes)
    if not include_biases:
        return edges
    return edges + sum(int(s) for s in layer_sizes[1:])
