"""X-Net baseline topologies (Prabhu et al., "Deep Expander Networks").

Two flavours:

* :func:`random_xnet` -- every node of the *smaller* side of each layer
  pair keeps a fixed number of edges chosen uniformly at random (random
  bipartite expander).  Path-connectedness holds only probabilistically.
* :func:`explicit_xnet` -- deterministic Cayley-graph layers; adjacent
  layers are forced to share the same width (see
  :mod:`repro.baselines.cayley`).

Both return :class:`repro.topology.fnnt.FNNT` objects so they can be
trained, analysed, and benchmarked through exactly the same code paths as
RadiX-Nets.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.baselines.cayley import cayley_xnet
from repro.topology.fnnt import FNNT
from repro.topology.random_graphs import _repair_empty_rows_cols
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


def random_xnet(
    layer_sizes: Sequence[int],
    out_degree: int,
    *,
    seed: RngLike = None,
    name: str = "random-xnet",
) -> FNNT:
    """A random X-Net: expander-style sparse layers with fixed per-node degree.

    For each adjacent layer pair, edges are assigned from the side with
    fewer nodes so that the expected degree is balanced; every node on the
    chosen side receives exactly ``out_degree`` edges (clipped to the other
    side's width), then empty rows/columns are repaired.  This mirrors the
    X-Linear construction where the explicit expander degree ``D`` is the
    sparsity knob.
    """
    sizes = [check_positive_int(s, "layer size") for s in layer_sizes]
    if len(sizes) < 2:
        raise ValidationError("layer_sizes must contain at least two layers")
    out_degree = check_positive_int(out_degree, "out_degree")
    rng = ensure_rng(seed)
    submatrices = []
    for i in range(len(sizes) - 1):
        rows, cols = sizes[i], sizes[i + 1]
        mask = np.zeros((rows, cols), dtype=bool)
        if rows <= cols:
            k = min(out_degree, cols)
            for r in range(rows):
                mask[r, rng.choice(cols, size=k, replace=False)] = True
        else:
            k = min(out_degree, rows)
            for c in range(cols):
                mask[rng.choice(rows, size=k, replace=False), c] = True
        mask = _repair_empty_rows_cols(mask, rng)
        submatrices.append(mask.astype(np.float64))
    return FNNT(submatrices, name=name)


def explicit_xnet(
    width: int,
    depth: int,
    degree: int,
    *,
    name: str = "explicit-xnet",
) -> FNNT:
    """A deterministic (Cayley-graph) X-Net with equal layer widths.

    Thin wrapper over :func:`repro.baselines.cayley.cayley_xnet`, exposed
    here so the three baseline families (dense / random X-Net / explicit
    X-Net) are importable from one module.
    """
    return cayley_xnet(width, depth, degree, name=name)


def xnet_density(layer_sizes: Sequence[int], out_degree: int) -> float:
    """Expected density of a random X-Net (ignoring the rare repair edges)."""
    sizes = [check_positive_int(s, "layer size") for s in layer_sizes]
    if len(sizes) < 2:
        raise ValidationError("layer_sizes must contain at least two layers")
    out_degree = check_positive_int(out_degree, "out_degree")
    edges = 0
    dense_edges = 0
    for i in range(len(sizes) - 1):
        rows, cols = sizes[i], sizes[i + 1]
        edges += min(rows, cols) * min(out_degree, max(rows, cols))
        dense_edges += rows * cols
    return edges / dense_edges
