"""Magnitude pruning baselines.

The classical route to sparse DNNs (LeCun et al., Han et al.) trains a
dense network and then removes the smallest-magnitude weights.  The paper
contrasts that *post hoc* sparsification with RadiX-Net's *de novo*
sparsity; the training benchmark (experiment E1) therefore includes a
magnitude-pruned dense model as a third arm.

These functions operate on weight matrices / trained models from
:mod:`repro.nn` and produce either binary masks or an :class:`FNNT`
describing the surviving topology.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sparse.csr import CSRMatrix
from repro.topology.fnnt import FNNT
from repro.utils.validation import check_probability


def magnitude_prune_mask(weights: np.ndarray, target_density: float) -> np.ndarray:
    """Binary mask keeping the largest-magnitude fraction ``target_density`` of weights.

    Exactly ``keep = round(target_density * size)`` entries survive the
    magnitude cut; ties at the cut magnitude are broken deterministically
    by flat (row-major) index, so an all-equal matrix realizes the target
    density instead of keeping everything.  On top of that, at least one
    weight per row and per column is always retained so the surviving
    topology remains a valid FNNT (no dead neurons) -- the realized
    density can therefore slightly exceed the target.
    """
    target_density = check_probability(target_density, "target_density")
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2:
        raise ValidationError("weights must be a 2-D matrix")
    keep = max(1, int(round(target_density * w.size)))
    # stable argsort on descending magnitude: ties kept in ascending
    # flat-index order, and exactly `keep` entries survive
    order = np.argsort(-np.abs(w).ravel(), kind="stable")
    mask = np.zeros(w.size, dtype=bool)
    mask[order[:keep]] = True
    mask = mask.reshape(w.shape)
    # guarantee FNNT validity: each row and column keeps its largest entry
    row_best = np.argmax(np.abs(w), axis=1)
    mask[np.arange(w.shape[0]), row_best] = True
    col_best = np.argmax(np.abs(w), axis=0)
    mask[col_best, np.arange(w.shape[1])] = True
    return mask


def prune_weights(weights: np.ndarray, target_density: float) -> np.ndarray:
    """Return a copy of ``weights`` with pruned entries set to zero."""
    mask = magnitude_prune_mask(weights, target_density)
    return np.where(mask, np.asarray(weights, dtype=np.float64), 0.0)


def prune_model_to_topology(weight_matrices: list[np.ndarray], target_density: float, *, name: str = "pruned") -> FNNT:
    """Prune every layer of a trained MLP and return the surviving topology.

    ``weight_matrices`` are the per-layer ``(fan_in, fan_out)`` weight
    arrays of a trained dense model (e.g. ``model.weight_matrices()`` from
    :mod:`repro.nn`).
    """
    if not weight_matrices:
        raise ValidationError("weight_matrices must be non-empty")
    submatrices = []
    for w in weight_matrices:
        mask = magnitude_prune_mask(w, target_density)
        submatrices.append(CSRMatrix.from_dense(mask.astype(np.float64)))
    return FNNT(submatrices, name=name)


def pruned_density(weight_matrices: list[np.ndarray], target_density: float) -> float:
    """Realized density after pruning (>= target because of the validity repair)."""
    topo = prune_model_to_topology(weight_matrices, target_density)
    return topo.density()
