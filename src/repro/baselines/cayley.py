"""Cayley-graph layers (the substrate of *explicit* X-Nets).

Prabhu et al. construct deterministic expander layers as Cayley graphs of
the cyclic group ``Z_n`` with a symmetric generator set ``S``: layer nodes
on both sides are the group elements and node ``g`` connects to ``g + s``
for every ``s in S``.  Because a Cayley graph is defined on a single vertex
set, explicit X-Linear layers force adjacent layers to have the same number
of nodes -- precisely the limitation RadiX-Net lifts.

This module implements cyclic-group Cayley layers and stacks them into a
full "explicit X-Net" baseline topology.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.topology.fnnt import FNNT
from repro.utils.validation import check_positive_int


def symmetric_generator_set(n: int, degree: int) -> tuple[int, ...]:
    """A canonical symmetric generator set of ``Z_n`` with ``degree`` elements.

    Picks ``{±1, ±2, ...}`` (and ``n/2`` when needed for odd degree on even
    ``n``) so that the set is closed under negation modulo ``n``, which
    makes the Cayley graph undirected-regular as required by the expander
    construction.  Zero is never included.
    """
    n = check_positive_int(n, "n", minimum=2)
    degree = check_positive_int(degree, "degree")
    if degree >= n:
        raise ValidationError(f"degree must be < n (got degree={degree}, n={n})")
    generators: list[int] = []
    step = 1
    while len(generators) < degree and step <= n // 2:
        generators.append(step)
        if len(generators) < degree and (n - step) % n != step:
            generators.append(n - step)
        step += 1
    if len(generators) < degree:
        raise ValidationError(
            f"cannot build a symmetric generator set of size {degree} in Z_{n}"
        )
    return tuple(sorted(generators[:degree]))


def cayley_graph_submatrix(n: int, generators: Sequence[int]) -> CSRMatrix:
    """Adjacency submatrix of the Cayley-graph layer ``Z_n`` with generators ``S``.

    Node ``g`` on the input side connects to ``(g + s) mod n`` on the output
    side for every ``s in S``; the result is an ``n x n`` 0/1 matrix with
    every row and column of degree ``|S|`` (a circulant, like the
    mixed-radix submatrices -- the structural kinship the paper exploits).
    """
    n = check_positive_int(n, "n", minimum=2)
    gens = sorted({int(g) % n for g in generators})
    if not gens:
        raise ValidationError("generators must be non-empty")
    if any(g == 0 for g in gens):
        raise ValidationError("generators must not include the identity (0)")
    source = np.repeat(np.arange(n, dtype=np.int64), len(gens))
    offsets = np.tile(np.asarray(gens, dtype=np.int64), n)
    target = (source + offsets) % n
    return COOMatrix((n, n), source, target, np.ones(source.size)).to_csr()


def cayley_xnet(
    width: int,
    depth: int,
    degree: int,
    *,
    name: str = "explicit-xnet",
) -> FNNT:
    """An explicit X-Net: ``depth`` stacked Cayley-graph layers of equal ``width``.

    Every layer must have the same width -- the structural constraint of
    explicit X-Nets that the paper contrasts with RadiX-Net's free choice of
    dense widths ``D``.
    """
    width = check_positive_int(width, "width", minimum=2)
    depth = check_positive_int(depth, "depth")
    generators = symmetric_generator_set(width, degree)
    submatrix = cayley_graph_submatrix(width, generators)
    return FNNT([submatrix] * depth, validate=False, name=name)
