"""The two-interleaved-spirals task (a classic nonlinearly separable benchmark)."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import RngLike, ensure_rng


def two_spirals(
    num_samples: int,
    *,
    noise: float = 0.1,
    turns: float = 1.5,
    embed_dim: int | None = None,
    seed: RngLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate the two-spirals binary classification task.

    ``turns`` controls how many revolutions each spiral makes; ``noise`` is
    the standard deviation of positional jitter.  With ``embed_dim`` the
    2-D points are embedded into a higher-dimensional space via a fixed
    random rotation (padding with zeros first), which makes the task a more
    realistic MLP workload.  Returns ``(features, labels in {0, 1})``.
    """
    if num_samples < 2:
        raise ValidationError("num_samples must be at least 2")
    if noise < 0:
        raise ValidationError("noise must be >= 0")
    if turns <= 0:
        raise ValidationError("turns must be positive")
    rng = ensure_rng(seed)
    per_class = num_samples // 2
    counts = [per_class, num_samples - per_class]
    points = []
    labels = []
    for class_index, count in enumerate(counts):
        t = rng.uniform(0.0, 1.0, size=count)
        radius = t
        angle = 2.0 * np.pi * turns * t + np.pi * class_index
        x = radius * np.cos(angle) + rng.normal(0.0, noise, size=count)
        y = radius * np.sin(angle) + rng.normal(0.0, noise, size=count)
        points.append(np.stack([x, y], axis=1))
        labels.append(np.full(count, class_index, dtype=np.int64))
    features = np.concatenate(points)
    targets = np.concatenate(labels)
    order = rng.permutation(num_samples)
    features, targets = features[order], targets[order]
    if embed_dim is not None:
        if embed_dim < 2:
            raise ValidationError("embed_dim must be >= 2")
        padded = np.zeros((num_samples, embed_dim))
        padded[:, :2] = features
        rotation, _ = np.linalg.qr(rng.normal(size=(embed_dim, embed_dim)))
        features = padded @ rotation
    return features, targets
