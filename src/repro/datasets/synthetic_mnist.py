"""Procedurally generated MNIST-like digit images.

Each of the ten classes is defined by a small set of strokes (line
segments in a unit square).  A sample is produced by jittering the stroke
endpoints, applying a random similarity transform (translation, scale,
slight rotation), rasterizing onto a 28x28 grid with anti-aliasing, and
adding pixel noise.  The result is a ten-class image classification task
with intra-class variability and inter-class confusability (e.g. 3/8, 1/7)
qualitatively similar to MNIST, suitable for comparing sparse and dense
MLPs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import RngLike, ensure_rng

#: Stroke templates per digit class: list of line segments
#: ((x0, y0), (x1, y1)) in a unit square with origin at the bottom-left.
GLYPH_STROKES: dict[int, list[tuple[tuple[float, float], tuple[float, float]]]] = {
    0: [((0.3, 0.15), (0.7, 0.15)), ((0.7, 0.15), (0.7, 0.85)), ((0.7, 0.85), (0.3, 0.85)), ((0.3, 0.85), (0.3, 0.15))],
    1: [((0.5, 0.1), (0.5, 0.9)), ((0.35, 0.7), (0.5, 0.9))],
    2: [((0.3, 0.8), (0.7, 0.8)), ((0.7, 0.8), (0.7, 0.5)), ((0.7, 0.5), (0.3, 0.2)), ((0.3, 0.2), (0.7, 0.2))],
    3: [((0.3, 0.85), (0.7, 0.85)), ((0.7, 0.85), (0.7, 0.5)), ((0.4, 0.5), (0.7, 0.5)), ((0.7, 0.5), (0.7, 0.15)), ((0.7, 0.15), (0.3, 0.15))],
    4: [((0.65, 0.1), (0.65, 0.9)), ((0.65, 0.9), (0.3, 0.4)), ((0.3, 0.4), (0.75, 0.4))],
    5: [((0.7, 0.85), (0.3, 0.85)), ((0.3, 0.85), (0.3, 0.55)), ((0.3, 0.55), (0.65, 0.55)), ((0.65, 0.55), (0.65, 0.2)), ((0.65, 0.2), (0.3, 0.2))],
    6: [((0.65, 0.85), (0.35, 0.6)), ((0.35, 0.6), (0.35, 0.2)), ((0.35, 0.2), (0.65, 0.2)), ((0.65, 0.2), (0.65, 0.5)), ((0.65, 0.5), (0.35, 0.5))],
    7: [((0.3, 0.85), (0.7, 0.85)), ((0.7, 0.85), (0.45, 0.1))],
    8: [((0.35, 0.5), (0.65, 0.5)), ((0.35, 0.5), (0.35, 0.85)), ((0.35, 0.85), (0.65, 0.85)), ((0.65, 0.85), (0.65, 0.5)), ((0.35, 0.5), (0.35, 0.15)), ((0.35, 0.15), (0.65, 0.15)), ((0.65, 0.15), (0.65, 0.5))],
    9: [((0.65, 0.15), (0.65, 0.85)), ((0.65, 0.85), (0.35, 0.85)), ((0.35, 0.85), (0.35, 0.55)), ((0.35, 0.55), (0.65, 0.55))],
}


def render_glyph(
    digit: int,
    *,
    image_size: int = 28,
    jitter: float = 0.03,
    noise: float = 0.05,
    seed: RngLike = None,
) -> np.ndarray:
    """Render a single noisy glyph image for ``digit`` as an ``(image_size, image_size)`` array.

    Pixel intensities lie in [0, 1].  ``jitter`` perturbs stroke endpoints,
    ``noise`` is the standard deviation of additive pixel noise.
    """
    if digit not in GLYPH_STROKES:
        raise ValidationError(f"digit must be in 0..9, got {digit}")
    if image_size < 8:
        raise ValidationError("image_size must be at least 8")
    rng = ensure_rng(seed)
    strokes = GLYPH_STROKES[digit]
    # random similarity transform
    scale = rng.uniform(0.8, 1.1)
    angle = rng.uniform(-0.15, 0.15)
    shift = rng.uniform(-0.06, 0.06, size=2)
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    image = np.zeros((image_size, image_size), dtype=np.float64)
    # rasterize each stroke by sampling points along the segment
    samples_per_unit = image_size * 4
    for (x0, y0), (x1, y1) in strokes:
        p0 = np.asarray([x0, y0]) + rng.normal(0.0, jitter, size=2)
        p1 = np.asarray([x1, y1]) + rng.normal(0.0, jitter, size=2)
        length = float(np.hypot(*(p1 - p0)))
        count = max(2, int(length * samples_per_unit))
        t = np.linspace(0.0, 1.0, count)
        points = p0[None, :] * (1 - t[:, None]) + p1[None, :] * t[:, None]
        # centre, scale, rotate, shift
        centred = (points - 0.5) * scale
        rotated = np.stack(
            [
                cos_a * centred[:, 0] - sin_a * centred[:, 1],
                sin_a * centred[:, 0] + cos_a * centred[:, 1],
            ],
            axis=1,
        )
        final = rotated + 0.5 + shift
        cols = np.clip((final[:, 0] * (image_size - 1)).round().astype(int), 0, image_size - 1)
        rows = np.clip(((1.0 - final[:, 1]) * (image_size - 1)).round().astype(int), 0, image_size - 1)
        image[rows, cols] = 1.0
    # thicken strokes with a 3x3 max filter (cheap dilation)
    padded = np.pad(image, 1)
    dilated = np.max(
        np.stack(
            [
                padded[dr : dr + image_size, dc : dc + image_size]
                for dr in range(3)
                for dc in range(3)
            ]
        ),
        axis=0,
    )
    image = np.clip(0.6 * image + 0.6 * dilated, 0.0, 1.0)
    if noise > 0:
        image = np.clip(image + rng.normal(0.0, noise, size=image.shape), 0.0, 1.0)
    return image


def synthetic_mnist(
    num_samples: int,
    *,
    image_size: int = 28,
    noise: float = 0.05,
    jitter: float = 0.03,
    seed: RngLike = None,
    flatten: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a balanced synthetic digit dataset.

    Returns ``(features, labels)``; features are flattened to
    ``(num_samples, image_size**2)`` unless ``flatten=False``.
    """
    if num_samples <= 0:
        raise ValidationError("num_samples must be positive")
    rng = ensure_rng(seed)
    labels = np.arange(num_samples, dtype=np.int64) % 10
    rng.shuffle(labels)
    images = np.stack(
        [
            render_glyph(
                int(label),
                image_size=image_size,
                jitter=jitter,
                noise=noise,
                seed=rng,
            )
            for label in labels
        ]
    )
    if flatten:
        images = images.reshape(num_samples, -1)
    return images, labels
