"""Synthetic datasets.

The training experiments of the sparse-DNN literature use MNIST-class
image tasks.  Because this reproduction has no network access, the
datasets here are generated procedurally but preserve the property that
matters for the sparse-vs-dense comparison: a classification task that a
dense MLP learns to high accuracy and that is non-trivial (classes overlap
in raw pixel/feature space).

* :func:`synthetic_mnist` -- 28x28 grayscale images of stroke-rendered
  digit-like glyphs with random translation, scaling, and noise;
* :func:`gaussian_mixture` -- k-class Gaussian blobs with controllable
  overlap;
* :func:`two_spirals` -- the classic two-interleaved-spirals task;
* :func:`teacher_student` -- regression targets produced by a fixed random
  "teacher" network.
"""

from repro.datasets.synthetic_mnist import synthetic_mnist, render_glyph, GLYPH_STROKES
from repro.datasets.gaussians import gaussian_mixture
from repro.datasets.spirals import two_spirals
from repro.datasets.teacher_student import teacher_student
from repro.datasets.registry import DATASETS, load_dataset

__all__ = [
    "synthetic_mnist",
    "render_glyph",
    "GLYPH_STROKES",
    "gaussian_mixture",
    "two_spirals",
    "teacher_student",
    "DATASETS",
    "load_dataset",
]
