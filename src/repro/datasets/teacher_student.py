"""Teacher-student regression data.

A fixed random two-layer "teacher" network defines the target function;
students (dense or sparse) are trained to match it.  This is the cleanest
setting in which to probe the paper's expressive-power discussion: the
target is exactly representable by a dense network of known size, and the
question is how well sparse topologies of equal width approximate it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import RngLike, ensure_rng


def teacher_student(
    num_samples: int,
    *,
    input_dim: int = 16,
    hidden_dim: int = 32,
    output_dim: int = 1,
    input_scale: float = 1.0,
    seed: RngLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate regression data from a fixed random tanh teacher network.

    Returns ``(features, targets)`` where
    ``targets = V tanh(W x + b)`` for teacher parameters drawn once from
    the seeded generator (so the same seed always gives the same teacher).
    """
    if num_samples <= 0:
        raise ValidationError("num_samples must be positive")
    if min(input_dim, hidden_dim, output_dim) < 1:
        raise ValidationError("dimensions must be positive")
    if input_scale <= 0:
        raise ValidationError("input_scale must be positive")
    rng = ensure_rng(seed)
    teacher_w = rng.normal(0.0, 1.0 / np.sqrt(input_dim), size=(input_dim, hidden_dim))
    teacher_b = rng.normal(0.0, 0.1, size=hidden_dim)
    teacher_v = rng.normal(0.0, 1.0 / np.sqrt(hidden_dim), size=(hidden_dim, output_dim))
    features = rng.normal(0.0, input_scale, size=(num_samples, input_dim))
    hidden = np.tanh(features @ teacher_w + teacher_b)
    targets = hidden @ teacher_v
    return features, targets
