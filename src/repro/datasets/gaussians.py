"""Gaussian-mixture classification data."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import RngLike, ensure_rng


def gaussian_mixture(
    num_samples: int,
    *,
    num_classes: int = 4,
    num_features: int = 16,
    class_separation: float = 3.0,
    noise: float = 1.0,
    seed: RngLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample a ``num_classes``-way Gaussian blob classification problem.

    Class means are drawn on a sphere of radius ``class_separation``;
    samples are isotropic Gaussians of standard deviation ``noise`` around
    their class mean.  Larger ``class_separation / noise`` means an easier
    task.  Returns ``(features, integer_labels)``.
    """
    if num_samples <= 0:
        raise ValidationError("num_samples must be positive")
    if num_classes < 2:
        raise ValidationError("num_classes must be at least 2")
    if num_features < 1:
        raise ValidationError("num_features must be at least 1")
    if noise <= 0 or class_separation < 0:
        raise ValidationError("noise must be > 0 and class_separation >= 0")
    rng = ensure_rng(seed)
    directions = rng.normal(size=(num_classes, num_features))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    means = directions * class_separation
    labels = np.arange(num_samples, dtype=np.int64) % num_classes
    rng.shuffle(labels)
    features = means[labels] + rng.normal(0.0, noise, size=(num_samples, num_features))
    return features, labels
