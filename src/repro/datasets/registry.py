"""Dataset registry: load any bundled dataset by name."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import ValidationError
from repro.datasets.gaussians import gaussian_mixture
from repro.datasets.spirals import two_spirals
from repro.datasets.synthetic_mnist import synthetic_mnist
from repro.datasets.teacher_student import teacher_student
from repro.utils.rng import RngLike

DatasetLoader = Callable[..., tuple[np.ndarray, np.ndarray]]

#: Name -> loader mapping used by the experiment harness and the examples.
DATASETS: dict[str, DatasetLoader] = {
    "synthetic_mnist": synthetic_mnist,
    "gaussian_mixture": gaussian_mixture,
    "two_spirals": two_spirals,
    "teacher_student": teacher_student,
}


def load_dataset(name: str, num_samples: int, *, seed: RngLike = None, **kwargs) -> tuple[np.ndarray, np.ndarray]:
    """Load a registered dataset by name.

    >>> x, y = load_dataset("gaussian_mixture", 64, seed=0)
    >>> x.shape[0]
    64
    """
    try:
        loader = DATASETS[name]
    except KeyError as exc:
        raise ValidationError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from exc
    return loader(num_samples, seed=seed, **kwargs)
