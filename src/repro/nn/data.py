"""Data handling utilities: one-hot encoding, splits, batching, normalization."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.utils.rng import RngLike, ensure_rng


def one_hot(labels: np.ndarray, num_classes: int | None = None) -> np.ndarray:
    """One-hot encode integer class labels into a ``(n, num_classes)`` float matrix."""
    arr = np.asarray(labels, dtype=np.int64).ravel()
    if arr.size == 0:
        raise ValidationError("labels must be non-empty")
    if arr.min() < 0:
        raise ValidationError("labels must be non-negative")
    if num_classes is None:
        num_classes = int(arr.max()) + 1
    if arr.max() >= num_classes:
        raise ValidationError(
            f"label {int(arr.max())} out of range for num_classes={num_classes}"
        )
    encoded = np.zeros((arr.size, num_classes), dtype=np.float64)
    encoded[np.arange(arr.size), arr] = 1.0
    return encoded


def train_val_split(
    features: np.ndarray,
    labels: np.ndarray,
    *,
    val_fraction: float = 0.2,
    seed: RngLike = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split into (train_x, train_y, val_x, val_y)."""
    x = np.asarray(features)
    y = np.asarray(labels)
    if x.shape[0] != y.shape[0]:
        raise ShapeError("features and labels must have the same number of samples")
    if not 0.0 < val_fraction < 1.0:
        raise ValidationError("val_fraction must be in (0, 1)")
    rng = ensure_rng(seed)
    order = rng.permutation(x.shape[0])
    x, y = x[order], y[order]
    val_size = max(1, int(round(val_fraction * x.shape[0])))
    if val_size >= x.shape[0]:
        raise ValidationError("val_fraction leaves no training samples")
    return x[val_size:], y[val_size:], x[:val_size], y[:val_size]


def minibatches(
    features: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    *,
    shuffle: bool = True,
    seed: RngLike = None,
    drop_last: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(batch_x, batch_y)`` minibatches."""
    x = np.asarray(features)
    y = np.asarray(labels)
    if x.shape[0] != y.shape[0]:
        raise ShapeError("features and labels must have the same number of samples")
    if batch_size <= 0:
        raise ValidationError("batch_size must be positive")
    indices = np.arange(x.shape[0])
    if shuffle:
        ensure_rng(seed).shuffle(indices)
    for start in range(0, x.shape[0], batch_size):
        batch = indices[start : start + batch_size]
        if drop_last and batch.size < batch_size:
            break
        yield x[batch], y[batch]


def standardize(
    features: np.ndarray,
    *,
    mean: np.ndarray | None = None,
    std: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Standardize features to zero mean, unit variance per column.

    Returns ``(standardized, mean, std)``; pass the returned ``mean`` and
    ``std`` back in to apply the training-set statistics to held-out data.
    Columns with zero variance are left unscaled.
    """
    x = np.asarray(features, dtype=np.float64)
    if x.ndim != 2:
        raise ShapeError("features must be 2-D (samples, features)")
    if mean is None:
        mean = x.mean(axis=0)
    if std is None:
        std = x.std(axis=0)
    safe_std = np.where(std > 0, std, 1.0)
    return (x - mean) / safe_std, mean, std
