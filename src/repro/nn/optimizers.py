"""First-order optimizers.

Every optimizer mutates the model's parameter arrays in place given the
aligned gradient arrays (``model.parameters()`` / ``model.gradients()``).
State (momentum buffers, moment estimates) is keyed by position so a single
optimizer instance must stay attached to a single model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


class SGD:
    """Plain stochastic gradient descent with optional weight decay."""

    def __init__(self, learning_rate: float = 0.01, *, weight_decay: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValidationError("learning_rate must be positive")
        if weight_decay < 0:
            raise ValidationError("weight_decay must be >= 0")
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        """Apply one update to every parameter array in place."""
        for param, grad in zip(parameters, gradients):
            update = grad
            if self.weight_decay:
                update = update + self.weight_decay * param
            param -= self.learning_rate * update


class Momentum(SGD):
    """SGD with classical or Nesterov momentum."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        momentum: float = 0.9,
        *,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, weight_decay=weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValidationError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)
        self._velocity: list[np.ndarray] | None = None

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in parameters]
        for param, grad, velocity in zip(parameters, gradients, self._velocity):
            update = grad
            if self.weight_decay:
                update = update + self.weight_decay * param
            velocity *= self.momentum
            velocity -= self.learning_rate * update
            if self.nesterov:
                param += self.momentum * velocity - self.learning_rate * update
            else:
                param += velocity


class RMSProp:
    """RMSProp: divide the learning rate by a running RMS of gradients."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        decay: float = 0.9,
        epsilon: float = 1e-8,
        *,
        weight_decay: float = 0.0,
    ) -> None:
        if learning_rate <= 0:
            raise ValidationError("learning_rate must be positive")
        if not 0.0 <= decay < 1.0:
            raise ValidationError("decay must be in [0, 1)")
        if weight_decay < 0:
            raise ValidationError("weight_decay must be >= 0")
        self.learning_rate = float(learning_rate)
        self.decay = float(decay)
        self.epsilon = float(epsilon)
        self.weight_decay = float(weight_decay)
        self._mean_square: list[np.ndarray] | None = None

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        """Apply one update to every parameter array in place."""
        if self._mean_square is None:
            self._mean_square = [np.zeros_like(p) for p in parameters]
        for param, grad, mean_square in zip(parameters, gradients, self._mean_square):
            update = grad
            if self.weight_decay:
                update = update + self.weight_decay * param
            mean_square *= self.decay
            mean_square += (1.0 - self.decay) * update * update
            param -= self.learning_rate * update / (np.sqrt(mean_square) + self.epsilon)


class Adam:
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        *,
        weight_decay: float = 0.0,
    ) -> None:
        if learning_rate <= 0:
            raise ValidationError("learning_rate must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValidationError("beta1 and beta2 must be in [0, 1)")
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._first_moment: list[np.ndarray] | None = None
        self._second_moment: list[np.ndarray] | None = None

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        """Apply one Adam update to every parameter array in place."""
        if self._first_moment is None or self._second_moment is None:
            self._first_moment = [np.zeros_like(p) for p in parameters]
            self._second_moment = [np.zeros_like(p) for p in parameters]
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, grad, m, v in zip(
            parameters, gradients, self._first_moment, self._second_moment
        ):
            update = grad
            if self.weight_decay:
                update = update + self.weight_decay * param
            m *= self.beta1
            m += (1.0 - self.beta1) * update
            v *= self.beta2
            v += (1.0 - self.beta2) * update * update
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
