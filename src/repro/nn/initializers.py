"""Weight initializers, including sparse fan-in correction.

When a layer is sparse, the *effective* fan-in of each output unit is its
in-degree in the topology, not the full input width.  Using the dense
fan-in would under-scale the surviving weights and slow sparse training --
one of the practical observations of the training-sparse-networks
companion work.  :func:`sparse_corrected_scale` computes the per-unit
correction factor used by :class:`repro.nn.layers.MaskedSparseLayer`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import RngLike, ensure_rng


def glorot_uniform(fan_in: int, fan_out: int, *, seed: RngLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a ``(fan_in, fan_out)`` weight matrix."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValidationError("fan_in and fan_out must be positive")
    rng = ensure_rng(seed)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(fan_in: int, fan_out: int, *, seed: RngLike = None) -> np.ndarray:
    """He (Kaiming) normal initialization, appropriate for ReLU networks."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValidationError("fan_in and fan_out must be positive")
    rng = ensure_rng(seed)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))


def sparse_corrected_scale(mask: np.ndarray) -> np.ndarray:
    """Per-output-unit scale factor ``sqrt(fan_in_dense / fan_in_effective)``.

    Multiplying a dense-initialized weight column by this factor restores
    the output-variance that the missing connections would otherwise
    remove.  Columns with zero in-degree (which a valid FNNT never has)
    get scale 1.0.
    """
    m = np.asarray(mask, dtype=bool)
    if m.ndim != 2:
        raise ValidationError("mask must be 2-D")
    effective_fan_in = m.sum(axis=0).astype(np.float64)
    dense_fan_in = float(m.shape[0])
    scale = np.ones(m.shape[1], dtype=np.float64)
    nonzero = effective_fan_in > 0
    scale[nonzero] = np.sqrt(dense_fan_in / effective_fan_in[nonzero])
    return scale


def zeros_bias(fan_out: int) -> np.ndarray:
    """All-zero bias vector."""
    if fan_out <= 0:
        raise ValidationError("fan_out must be positive")
    return np.zeros(fan_out, dtype=np.float64)
