"""Learning-rate schedules.

Schedules are callables ``schedule(epoch) -> learning_rate`` that the
:class:`repro.nn.train.Trainer` applies to the optimizer before each epoch.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError


class ConstantSchedule:
    """Always return the same learning rate."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValidationError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    def __call__(self, epoch: int) -> float:
        return self.learning_rate


class StepDecaySchedule:
    """Multiply the learning rate by ``factor`` every ``step_size`` epochs."""

    def __init__(self, initial: float, *, factor: float = 0.5, step_size: int = 10) -> None:
        if initial <= 0:
            raise ValidationError("initial learning rate must be positive")
        if not 0 < factor <= 1:
            raise ValidationError("factor must be in (0, 1]")
        if step_size <= 0:
            raise ValidationError("step_size must be positive")
        self.initial = float(initial)
        self.factor = float(factor)
        self.step_size = int(step_size)

    def __call__(self, epoch: int) -> float:
        if epoch < 0:
            raise ValidationError("epoch must be >= 0")
        return self.initial * (self.factor ** (epoch // self.step_size))


class CosineSchedule:
    """Cosine annealing from ``initial`` to ``minimum`` over ``total_epochs``."""

    def __init__(self, initial: float, total_epochs: int, *, minimum: float = 0.0) -> None:
        if initial <= 0:
            raise ValidationError("initial learning rate must be positive")
        if total_epochs <= 0:
            raise ValidationError("total_epochs must be positive")
        if minimum < 0 or minimum > initial:
            raise ValidationError("minimum must be in [0, initial]")
        self.initial = float(initial)
        self.total_epochs = int(total_epochs)
        self.minimum = float(minimum)

    def __call__(self, epoch: int) -> float:
        if epoch < 0:
            raise ValidationError("epoch must be >= 0")
        progress = min(epoch, self.total_epochs) / self.total_epochs
        return self.minimum + 0.5 * (self.initial - self.minimum) * (1.0 + math.cos(math.pi * progress))
