"""Classification metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ValidationError


def _to_labels(values: np.ndarray) -> np.ndarray:
    """Accept either integer labels or one-hot/probability rows."""
    arr = np.asarray(values)
    if arr.ndim == 1:
        return arr.astype(np.int64)
    if arr.ndim == 2:
        return np.argmax(arr, axis=1).astype(np.int64)
    raise ShapeError("labels must be 1-D class ids or 2-D one-hot/probability rows")


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of samples whose predicted class matches the target class."""
    pred = _to_labels(predictions)
    true = _to_labels(targets)
    if pred.shape != true.shape:
        raise ShapeError(f"predictions {pred.shape} and targets {true.shape} must match")
    if pred.size == 0:
        raise ValidationError("cannot compute accuracy of an empty batch")
    return float(np.mean(pred == true))


def top_k_accuracy(scores: np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose target class is among the top-``k`` scores."""
    s = np.asarray(scores, dtype=np.float64)
    if s.ndim != 2:
        raise ShapeError("scores must be 2-D (batch, classes)")
    if k <= 0 or k > s.shape[1]:
        raise ValidationError(f"k must be in [1, {s.shape[1]}], got {k}")
    true = _to_labels(targets)
    if true.shape[0] != s.shape[0]:
        raise ShapeError("scores and targets have different batch sizes")
    top_k = np.argpartition(-s, kth=k - 1, axis=1)[:, :k]
    return float(np.mean(np.any(top_k == true[:, None], axis=1)))


def confusion_matrix(predictions: np.ndarray, targets: np.ndarray, num_classes: int | None = None) -> np.ndarray:
    """Confusion matrix ``C[true, predicted]`` with integer counts."""
    pred = _to_labels(predictions)
    true = _to_labels(targets)
    if pred.shape != true.shape:
        raise ShapeError("predictions and targets must have the same length")
    if num_classes is None:
        num_classes = int(max(pred.max(initial=0), true.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (true, pred), 1)
    return matrix


def per_class_accuracy(predictions: np.ndarray, targets: np.ndarray, num_classes: int | None = None) -> np.ndarray:
    """Recall of each class (diagonal of the row-normalized confusion matrix)."""
    matrix = confusion_matrix(predictions, targets, num_classes)
    totals = matrix.sum(axis=1).astype(np.float64)
    result = np.zeros(matrix.shape[0], dtype=np.float64)
    nonzero = totals > 0
    result[nonzero] = np.diag(matrix)[nonzero] / totals[nonzero]
    return result
