"""A NumPy feedforward neural-network training substrate.

The paper's downstream claim (via Alford & Kepner and the wider sparse-DNN
literature it cites) is that de-novo sparse topologies such as RadiX-Nets
train to accuracies comparable with dense networks.  Exercising that claim
requires a trainable model whose connectivity is *exactly* a given FNNT.
This subpackage provides:

* layers whose weights live either in a dense array (``DenseLayer``), a
  dense array multiplied by a binary mask (``MaskedSparseLayer`` -- the
  dense-hardware training representation of a sparse topology), or a CSR
  matrix (``CSRTrainableLayer`` -- genuinely sparse O(nnz) training
  through the backend kernel plane; ``CSRSparseLayer`` -- the
  inference-only representation);
* activations, losses, initializers (with sparse fan-in correction),
  optimizers (SGD / momentum / Nesterov / RMSProp / Adam) and learning-rate
  schedules;
* a :class:`~repro.nn.model.FeedforwardNetwork` container and a
  :class:`~repro.nn.train.Trainer` with metrics, history, and early
  stopping;
* :func:`~repro.nn.builder.model_from_topology` which turns any
  :class:`~repro.topology.fnnt.FNNT` (RadiX-Net, X-Net, dense, random)
  into a trainable model, so every topology family flows through the same
  training and evaluation code.
"""

from repro.nn.activations import Activation, relu, sigmoid, tanh, identity, softmax_stable
from repro.nn.initializers import glorot_uniform, he_normal, sparse_corrected_scale
from repro.nn.losses import CrossEntropyLoss, MeanSquaredErrorLoss
from repro.nn.layers import (
    DenseLayer,
    MaskedSparseLayer,
    CSRSparseLayer,
    CSRTrainableLayer,
)
from repro.nn.model import FeedforwardNetwork
from repro.nn.optimizers import SGD, Momentum, RMSProp, Adam
from repro.nn.schedulers import ConstantSchedule, StepDecaySchedule, CosineSchedule
from repro.nn.metrics import accuracy, confusion_matrix, top_k_accuracy
from repro.nn.data import one_hot, train_val_split, minibatches, standardize
from repro.nn.train import Trainer, TrainingHistory
from repro.nn.builder import model_from_topology, dense_model

__all__ = [
    "Activation",
    "relu",
    "sigmoid",
    "tanh",
    "identity",
    "softmax_stable",
    "glorot_uniform",
    "he_normal",
    "sparse_corrected_scale",
    "CrossEntropyLoss",
    "MeanSquaredErrorLoss",
    "DenseLayer",
    "MaskedSparseLayer",
    "CSRSparseLayer",
    "CSRTrainableLayer",
    "FeedforwardNetwork",
    "SGD",
    "Momentum",
    "RMSProp",
    "Adam",
    "ConstantSchedule",
    "StepDecaySchedule",
    "CosineSchedule",
    "accuracy",
    "confusion_matrix",
    "top_k_accuracy",
    "one_hot",
    "train_val_split",
    "minibatches",
    "standardize",
    "Trainer",
    "TrainingHistory",
    "model_from_topology",
    "dense_model",
]
