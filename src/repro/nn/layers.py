"""Network layers.

Four affine layer types share one interface (``forward``, ``backward``,
``parameters``, ``gradients``; :class:`CSRSparseLayer` is forward-only):

* :class:`DenseLayer` -- ordinary fully-connected affine layer;
* :class:`MaskedSparseLayer` -- a dense weight array multiplied elementwise
  by a fixed binary mask derived from an FNNT adjacency submatrix.  The
  mask is applied in both the forward and the gradient path, so pruned
  connections stay exactly zero throughout training.  This is the standard
  way to train a fixed sparse topology on dense hardware and is how the
  sparse-training companion experiments were run.
* :class:`CSRTrainableLayer` -- weights stored in a CSR matrix whose
  ``data`` array *is* the trainable parameter vector: O(nnz) parameter,
  gradient, and optimizer-state storage.  Forward runs through the
  backend ``spmm`` kernel and backward through the backend ``sdmm``
  (sampled dense-dense multiply) kernel, so training dispatches through
  the same kernel plane as inference.  Numerically equivalent to
  :class:`MaskedSparseLayer` for the same topology and seed.
* :class:`CSRSparseLayer` -- weights stored in a CSR matrix; forward-only
  (inference), used by the Graph Challenge engine and for deploying
  trained masked layers in a genuinely sparse representation.  Its sparse
  kernels dispatch through :mod:`repro.backends` (the backend is bound at
  construction, when the transposed weights are precomputed once).

All layers operate on batches shaped ``(batch, features)``.
"""

from __future__ import annotations

import numpy as np

from repro.backends import resolve_backend
from repro.backends.base import SparseBackend
from repro.errors import ShapeError, ValidationError
from repro.nn.activations import Activation, get_activation
from repro.nn.initializers import glorot_uniform, he_normal, sparse_corrected_scale, zeros_bias
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import RngLike


class DenseLayer:
    """A fully-connected affine layer followed by an elementwise activation."""

    def __init__(
        self,
        fan_in: int,
        fan_out: int,
        *,
        activation: str | Activation = "relu",
        seed: RngLike = None,
        init: str = "he",
    ) -> None:
        if fan_in <= 0 or fan_out <= 0:
            raise ValidationError("fan_in and fan_out must be positive")
        self.fan_in = int(fan_in)
        self.fan_out = int(fan_out)
        self.activation = get_activation(activation)
        if init == "he":
            self.weights = he_normal(fan_in, fan_out, seed=seed)
        elif init == "glorot":
            self.weights = glorot_uniform(fan_in, fan_out, seed=seed)
        else:
            raise ValidationError(f"unknown init {init!r}; use 'he' or 'glorot'")
        self.biases = zeros_bias(fan_out)
        self.weight_gradient = np.zeros_like(self.weights)
        self.bias_gradient = np.zeros_like(self.biases)
        self._last_input: np.ndarray | None = None
        self._last_output: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray, *, training: bool = True) -> np.ndarray:
        """Compute ``activation(inputs @ W + b)``."""
        x = np.asarray(inputs, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.fan_in:
            raise ShapeError(
                f"inputs must have shape (batch, {self.fan_in}), got {x.shape}"
            )
        pre_activation = x @ self.effective_weights() + self.biases
        output = self.activation(pre_activation)
        if training:
            self._last_input = x
            self._last_output = output
        return output

    def backward(self, upstream_gradient: np.ndarray) -> np.ndarray:
        """Compute parameter gradients and return the gradient w.r.t. the inputs.

        Gradients are *set*, not accumulated: each backward pass overwrites
        ``weight_gradient``/``bias_gradient`` with this batch's gradients.
        The forward caches are consumed by the call, so a second backward
        without an intervening training-mode forward raises
        :class:`~repro.errors.ValidationError` instead of silently reusing
        stale activations.
        """
        if self._last_input is None or self._last_output is None:
            raise ValidationError("backward called before a training-mode forward pass")
        grad = np.asarray(upstream_gradient, dtype=np.float64)
        if grad.shape != self._last_output.shape:
            raise ShapeError(
                f"upstream gradient shape {grad.shape} does not match output "
                f"shape {self._last_output.shape}"
            )
        local = grad * self.activation.derivative_from_output(self._last_output)
        self.weight_gradient = self._last_input.T @ local
        self.bias_gradient = local.sum(axis=0)
        self._mask_gradient()
        self._last_input = None
        self._last_output = None
        return local @ self.effective_weights().T

    def _mask_gradient(self) -> None:
        """Hook for sparse subclasses: restrict the weight gradient to the mask."""

    def effective_weights(self) -> np.ndarray:
        """The weight matrix actually applied in the forward pass."""
        return self.weights

    # ------------------------------------------------------------------ #
    def parameters(self) -> list[np.ndarray]:
        """The trainable parameter arrays (weights, biases) -- mutated in place by optimizers."""
        return [self.weights, self.biases]

    def gradients(self) -> list[np.ndarray]:
        """Gradients corresponding to :meth:`parameters`."""
        return [self.weight_gradient, self.bias_gradient]

    @property
    def parameter_count(self) -> int:
        """Number of trainable scalars in the layer."""
        return self.weights.size + self.biases.size

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{type(self).__name__}(fan_in={self.fan_in}, fan_out={self.fan_out}, "
            f"activation={self.activation.name!r})"
        )


class MaskedSparseLayer(DenseLayer):
    """A sparse affine layer: dense storage, binary connectivity mask.

    The mask never changes; weights outside the mask are zero at
    initialization and their gradients are zeroed every backward pass, so
    the realized connectivity is exactly the supplied FNNT submatrix.
    Initialization applies the sparse fan-in correction of
    :func:`repro.nn.initializers.sparse_corrected_scale`.
    """

    def __init__(
        self,
        mask: np.ndarray | CSRMatrix,
        *,
        activation: str | Activation = "relu",
        seed: RngLike = None,
        init: str = "he",
        fan_in_correction: bool = True,
    ) -> None:
        mask_dense = mask.to_dense() if isinstance(mask, CSRMatrix) else np.asarray(mask, dtype=np.float64)
        if mask_dense.ndim != 2:
            raise ShapeError("mask must be a 2-D adjacency submatrix")
        binary = (mask_dense != 0.0).astype(np.float64)
        super().__init__(binary.shape[0], binary.shape[1], activation=activation, seed=seed, init=init)
        self.mask = binary
        if fan_in_correction:
            self.weights *= sparse_corrected_scale(binary)[None, :]
        self.weights *= self.mask
        self.weight_gradient = np.zeros_like(self.weights)

    def _mask_gradient(self) -> None:
        self.weight_gradient *= self.mask

    def effective_weights(self) -> np.ndarray:
        """Weights with the connectivity mask applied (defensive re-masking)."""
        return self.weights * self.mask

    @property
    def connection_count(self) -> int:
        """Number of actual (unmasked) connections."""
        return int(self.mask.sum())

    @property
    def density(self) -> float:
        """Fraction of possible connections that exist."""
        return self.connection_count / self.mask.size

    @property
    def parameter_count(self) -> int:
        """Trainable scalars: one weight per connection plus the biases."""
        return self.connection_count + self.biases.size

    def to_csr_layer(
        self, *, backend: str | SparseBackend | None = None
    ) -> "CSRSparseLayer":
        """Deploy the trained masked layer as a genuinely sparse inference layer.

        The effective (masked) weights are compressed to CSR and wrapped in
        a :class:`CSRSparseLayer` bound to ``backend`` (default: the active
        sparse backend), so a trained topology can be served through the
        same kernel layer as the Graph Challenge engine.
        """
        return CSRSparseLayer(
            CSRMatrix.from_dense(self.effective_weights()),
            self.biases.copy(),
            activation=self.activation,
            backend=backend,
        )


class CSRSparseLayer:
    """Inference-only sparse affine layer with CSR-stored weights.

    Computes ``activation(x @ W + b)`` where ``W`` is a
    :class:`repro.sparse.csr.CSRMatrix` of shape ``(fan_in, fan_out)``.
    Used by the Graph Challenge inference engine and by
    :meth:`repro.nn.model.FeedforwardNetwork.to_sparse_inference`.
    """

    def __init__(
        self,
        weights: CSRMatrix,
        biases: np.ndarray | None = None,
        *,
        activation: str | Activation = "relu",
        backend: str | SparseBackend | None = None,
    ) -> None:
        if not isinstance(weights, CSRMatrix):
            raise ValidationError("weights must be a CSRMatrix")
        self.weights = weights
        self.fan_in, self.fan_out = weights.shape
        self.biases = (
            np.zeros(self.fan_out) if biases is None else np.asarray(biases, dtype=np.float64).ravel()
        )
        if self.biases.size != self.fan_out:
            raise ShapeError(
                f"biases must have length {self.fan_out}, got {self.biases.size}"
            )
        self.activation = get_activation(activation)
        self.backend = resolve_backend(backend)
        # x @ W computed as (W^T @ x^T)^T; cache the transpose once.
        self._weights_t = self.backend.transpose(weights)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Compute ``activation(inputs @ W + b)`` for a batch of inputs."""
        x = np.asarray(inputs, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.fan_in:
            raise ShapeError(
                f"inputs must have shape (batch, {self.fan_in}), got {x.shape}"
            )
        pre_activation = self.backend.spmm(self._weights_t, x.T).T + self.biases
        return self.activation(pre_activation)

    @property
    def parameter_count(self) -> int:
        """Stored weights plus biases."""
        return self.weights.nnz + self.biases.size

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"CSRSparseLayer(fan_in={self.fan_in}, fan_out={self.fan_out}, "
            f"nnz={self.weights.nnz}, activation={self.activation.name!r}, "
            f"backend={self.backend.name!r})"
        )


class CSRTrainableLayer:
    """A trainable sparse affine layer with genuinely sparse O(nnz) storage.

    Weights live in a :class:`~repro.sparse.csr.CSRMatrix` of shape
    ``(fan_in, fan_out)`` whose ``data`` array is handed directly to the
    optimizer: parameters, gradients, and any optimizer state (momentum,
    Adam moments, ...) are all vectors of length ``nnz``, never dense
    ``fan_in x fan_out`` arrays.  The connectivity pattern is fixed at
    construction, so weights outside the topology do not exist at all --
    mask invariance is structural rather than enforced by re-masking.

    The forward pass is the backend ``spmm`` kernel (as in
    :class:`CSRSparseLayer`); the backward pass computes the weight
    gradient with the backend ``sdmm`` kernel (``x.T @ dy`` sampled on the
    pattern) and the input gradient with ``spmm`` against the stored
    weights.  Initialization replays :class:`MaskedSparseLayer`'s exact
    draw sequence (full dense draw, sparse fan-in correction, gather at
    the mask's nonzeros), so the two layer types are numerically
    equivalent for the same mask, seed, and options.
    """

    def __init__(
        self,
        mask: np.ndarray | CSRMatrix,
        *,
        activation: str | Activation = "relu",
        seed: RngLike = None,
        init: str = "he",
        fan_in_correction: bool = True,
        backend: str | SparseBackend | None = None,
    ) -> None:
        mask_dense = mask.to_dense() if isinstance(mask, CSRMatrix) else np.asarray(mask, dtype=np.float64)
        if mask_dense.ndim != 2:
            raise ShapeError("mask must be a 2-D adjacency submatrix")
        binary = (mask_dense != 0.0).astype(np.float64)
        self.fan_in = int(binary.shape[0])
        self.fan_out = int(binary.shape[1])
        if self.fan_in == 0 or self.fan_out == 0:
            raise ValidationError("mask must have positive dimensions")
        self.activation = get_activation(activation)
        if init == "he":
            dense = he_normal(self.fan_in, self.fan_out, seed=seed)
        elif init == "glorot":
            dense = glorot_uniform(self.fan_in, self.fan_out, seed=seed)
        else:
            raise ValidationError(f"unknown init {init!r}; use 'he' or 'glorot'")
        if fan_in_correction:
            dense *= sparse_corrected_scale(binary)[None, :]
        pattern = CSRMatrix.from_dense(binary)
        # np.nonzero is row-major, matching CSR storage order exactly.
        rows, cols = np.nonzero(binary)
        self.weights = pattern.with_data(dense[rows, cols])
        self.biases = zeros_bias(self.fan_out)
        self.backend = resolve_backend(backend)
        # x @ W is computed as (W^T @ x^T)^T, but the optimizer mutates
        # weights.data in place, so the transpose cannot be cached whole.
        # Tag every stored entry with its 1-based position (1-based so an
        # explicitly stored zero weight cannot zero out a tag), transpose
        # once, and recover the CSR->CSC data permutation; each forward
        # then re-syncs the transposed values with one O(nnz) gather.
        tag = self.weights.with_data(
            np.arange(1, self.weights.nnz + 1, dtype=np.float64)
        )
        tag_t = self.backend.transpose(tag)
        self._pattern_t = tag_t.astype_binary()
        self._t_perm = tag_t.data.astype(np.int64) - 1
        self.weight_gradient = np.zeros(self.weights.nnz, dtype=np.float64)
        self.bias_gradient = np.zeros_like(self.biases)
        self._last_input: np.ndarray | None = None
        self._last_output: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray, *, training: bool = True) -> np.ndarray:
        """Compute ``activation(inputs @ W + b)`` through the backend spmm kernel."""
        x = np.asarray(inputs, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.fan_in:
            raise ShapeError(
                f"inputs must have shape (batch, {self.fan_in}), got {x.shape}"
            )
        weights_t = self._pattern_t.with_data(self.weights.data[self._t_perm])
        pre_activation = self.backend.spmm(weights_t, x.T).T + self.biases
        output = self.activation(pre_activation)
        if training:
            self._last_input = x
            self._last_output = output
        return output

    def backward(self, upstream_gradient: np.ndarray) -> np.ndarray:
        """Compute O(nnz) parameter gradients and return the input gradient.

        The weight gradient is the backend's sampled dense-dense multiply
        (:meth:`~repro.backends.base.SparseBackend.sdmm`) of the cached
        input against the local gradient, restricted to the fixed pattern.
        As in :class:`DenseLayer`, the forward caches are consumed: a
        second backward without a new training-mode forward raises
        :class:`~repro.errors.ValidationError`.
        """
        if self._last_input is None or self._last_output is None:
            raise ValidationError("backward called before a training-mode forward pass")
        grad = np.asarray(upstream_gradient, dtype=np.float64)
        if grad.shape != self._last_output.shape:
            raise ShapeError(
                f"upstream gradient shape {grad.shape} does not match output "
                f"shape {self._last_output.shape}"
            )
        local = grad * self.activation.derivative_from_output(self._last_output)
        self.weight_gradient = self.backend.sdmm(
            self._last_input, local, self.weights
        ).data
        self.bias_gradient = local.sum(axis=0)
        # grad_x = local @ W^T, computed sparse-side as (W @ local^T)^T.
        grad_input = self.backend.spmm(self.weights, local.T).T
        self._last_input = None
        self._last_output = None
        return grad_input

    # ------------------------------------------------------------------ #
    def parameters(self) -> list[np.ndarray]:
        """The trainable arrays: the CSR data vector (length nnz) and the biases."""
        return [self.weights.data, self.biases]

    def gradients(self) -> list[np.ndarray]:
        """Gradients corresponding to :meth:`parameters` (both O(nnz))."""
        return [self.weight_gradient, self.bias_gradient]

    def effective_weights(self) -> np.ndarray:
        """The dense equivalent of the CSR weights (diagnostics only)."""
        return self.weights.to_dense()

    @property
    def connection_count(self) -> int:
        """Number of actual connections (stored CSR entries)."""
        return self.weights.nnz

    @property
    def density(self) -> float:
        """Fraction of possible connections that exist."""
        return self.weights.nnz / (self.fan_in * self.fan_out)

    @property
    def parameter_count(self) -> int:
        """Trainable scalars: one weight per stored entry plus the biases."""
        return self.weights.nnz + self.biases.size

    def to_csr_layer(
        self, *, backend: str | SparseBackend | None = None
    ) -> CSRSparseLayer:
        """Deploy as a forward-only :class:`CSRSparseLayer` (weights copied)."""
        return CSRSparseLayer(
            self.weights.with_data(self.weights.data.copy()),
            self.biases.copy(),
            activation=self.activation,
            backend=self.backend if backend is None else backend,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"CSRTrainableLayer(fan_in={self.fan_in}, fan_out={self.fan_out}, "
            f"nnz={self.weights.nnz}, activation={self.activation.name!r}, "
            f"backend={self.backend.name!r})"
        )
