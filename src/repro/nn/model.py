"""The :class:`FeedforwardNetwork` model container."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.nn.layers import (
    CSRSparseLayer,
    CSRTrainableLayer,
    DenseLayer,
    MaskedSparseLayer,
)
from repro.sparse.csr import CSRMatrix


class FeedforwardNetwork:
    """An ordered stack of affine layers trained by backpropagation.

    The last layer is conventionally linear (identity activation) and the
    loss object owns the output nonlinearity (softmax inside the
    cross-entropy), which keeps gradients numerically stable.
    """

    def __init__(self, layers: Sequence[DenseLayer], *, name: str = "model") -> None:
        if not layers:
            raise ValidationError("a FeedforwardNetwork needs at least one layer")
        for i in range(len(layers) - 1):
            if layers[i].fan_out != layers[i + 1].fan_in:
                raise ShapeError(
                    f"layer {i} fan_out ({layers[i].fan_out}) does not match "
                    f"layer {i + 1} fan_in ({layers[i + 1].fan_in})"
                )
        self.layers = list(layers)
        self.name = str(name)

    # ------------------------------------------------------------------ #
    @property
    def input_size(self) -> int:
        """Width of the input layer."""
        return self.layers[0].fan_in

    @property
    def output_size(self) -> int:
        """Width of the output layer."""
        return self.layers[-1].fan_out

    @property
    def parameter_count(self) -> int:
        """Total trainable scalar count (respecting sparsity masks)."""
        return sum(layer.parameter_count for layer in self.layers)

    @property
    def layer_sizes(self) -> tuple[int, ...]:
        """Node counts of every layer, input through output."""
        return (self.layers[0].fan_in, *(layer.fan_out for layer in self.layers))

    def is_sparse(self) -> bool:
        """True if any layer carries a connectivity mask or CSR weights."""
        return any(
            isinstance(layer, (MaskedSparseLayer, CSRTrainableLayer))
            for layer in self.layers
        )

    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray, *, training: bool = True) -> np.ndarray:
        """Run the full forward pass; returns the output-layer pre-softmax values."""
        x = np.asarray(inputs, dtype=np.float64)
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, loss_gradient: np.ndarray) -> None:
        """Backpropagate the loss gradient through every layer."""
        grad = np.asarray(loss_gradient, dtype=np.float64)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Forward pass without caching activations (inference mode)."""
        return self.forward(inputs, training=False)

    def predict_classes(self, inputs: np.ndarray) -> np.ndarray:
        """Argmax class predictions for classification models."""
        return np.argmax(self.predict(inputs), axis=1)

    # ------------------------------------------------------------------ #
    def parameters(self) -> list[np.ndarray]:
        """All trainable parameter arrays, layer by layer."""
        params: list[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def gradients(self) -> list[np.ndarray]:
        """All gradient arrays, aligned with :meth:`parameters`."""
        grads: list[np.ndarray] = []
        for layer in self.layers:
            grads.extend(layer.gradients())
        return grads

    def weight_matrices(self) -> list[np.ndarray]:
        """Copies of the effective (masked) weight matrices of every layer."""
        return [layer.effective_weights().copy() for layer in self.layers]

    def bias_vectors(self) -> list[np.ndarray]:
        """Copies of the bias vectors of every layer."""
        return [layer.biases.copy() for layer in self.layers]

    # ------------------------------------------------------------------ #
    def realized_topology_density(self) -> float:
        """Fraction of nonzero weights relative to the dense parameter count."""
        nonzero = sum(int(np.count_nonzero(w)) for w in self.weight_matrices())
        dense = sum(w.size for w in self.weight_matrices())
        return nonzero / dense

    def to_sparse_inference(self) -> list[CSRSparseLayer]:
        """Convert the trained model to CSR inference layers.

        The final layer keeps its (identity/linear) activation; callers
        apply softmax separately if probabilities are needed.
        """
        sparse_layers = []
        for layer in self.layers:
            if isinstance(layer, CSRTrainableLayer):
                # Already CSR: reuse the trained pattern directly instead of
                # a dense round-trip (which would drop weights trained to
                # exactly 0.0 from the stored pattern).
                sparse_layers.append(layer.to_csr_layer())
                continue
            csr = CSRMatrix.from_dense(layer.effective_weights())
            sparse_layers.append(
                CSRSparseLayer(csr, layer.biases.copy(), activation=layer.activation)
            )
        return sparse_layers

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"FeedforwardNetwork(name={self.name!r}, layer_sizes={self.layer_sizes}, "
            f"parameters={self.parameter_count}, sparse={self.is_sparse()})"
        )
