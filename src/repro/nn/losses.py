"""Loss functions.

Each loss exposes ``value(predictions, targets)`` and
``gradient(predictions, targets)`` where the gradient is taken with respect
to the *pre-activation logits* of the output layer (the model applies no
activation on its last layer when used with :class:`CrossEntropyLoss`, and
the identity activation when used with :class:`MeanSquaredErrorLoss`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.activations import softmax_stable


def _check_shapes(predictions: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(predictions, dtype=np.float64)
    t = np.asarray(targets, dtype=np.float64)
    if p.shape != t.shape:
        raise ShapeError(f"predictions {p.shape} and targets {t.shape} must match")
    if p.ndim != 2:
        raise ShapeError("predictions and targets must be 2-D (batch, features)")
    return p, t


class CrossEntropyLoss:
    """Softmax cross-entropy over logits with one-hot (or soft) targets."""

    name = "cross_entropy"

    def value(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """Mean cross-entropy of the batch."""
        p, t = _check_shapes(logits, targets)
        probabilities = softmax_stable(p, axis=1)
        clipped = np.clip(probabilities, 1e-12, 1.0)
        return float(-np.mean(np.sum(t * np.log(clipped), axis=1)))

    def gradient(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        p, t = _check_shapes(logits, targets)
        probabilities = softmax_stable(p, axis=1)
        return (probabilities - t) / p.shape[0]

    def predictions(self, logits: np.ndarray) -> np.ndarray:
        """Class probabilities implied by the logits."""
        return softmax_stable(np.asarray(logits, dtype=np.float64), axis=1)


class MeanSquaredErrorLoss:
    """Mean squared error over raw outputs (regression)."""

    name = "mse"

    def value(self, outputs: np.ndarray, targets: np.ndarray) -> float:
        """Mean of squared differences over all entries of the batch."""
        p, t = _check_shapes(outputs, targets)
        return float(np.mean((p - t) ** 2))

    def gradient(self, outputs: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of the mean loss with respect to the outputs."""
        p, t = _check_shapes(outputs, targets)
        return 2.0 * (p - t) / p.size

    def predictions(self, outputs: np.ndarray) -> np.ndarray:
        """Regression predictions are the raw outputs."""
        return np.asarray(outputs, dtype=np.float64)
