"""Build trainable models from topologies.

:func:`model_from_topology` is the bridge between the combinatorial half of
the package (FNNTs -- RadiX-Nets, X-Nets, random graphs, dense reference
nets) and the training half: every adjacency submatrix becomes the
connectivity mask of a :class:`repro.nn.layers.MaskedSparseLayer` (or a
plain :class:`DenseLayer` when the submatrix is all ones), so any topology
family can be trained, evaluated, and compared through identical code.
With ``sparse_training=True`` the sparse submatrices become
:class:`repro.nn.layers.CSRTrainableLayer` objects instead -- O(nnz)
parameter storage with forward/backward running through the backend
kernel plane -- numerically equivalent to the masked layers for the same
seed.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.backends.base import SparseBackend
from repro.errors import ValidationError
from repro.nn.layers import CSRTrainableLayer, DenseLayer, MaskedSparseLayer
from repro.nn.model import FeedforwardNetwork
from repro.topology.fnnt import FNNT
from repro.utils.rng import RngLike, spawn_rngs


def model_from_topology(
    topology: FNNT,
    *,
    hidden_activation: str = "relu",
    output_activation: str = "identity",
    seed: RngLike = None,
    fan_in_correction: bool = True,
    force_masked: bool = False,
    sparse_training: bool = False,
    backend: str | SparseBackend | None = None,
    name: str | None = None,
) -> FeedforwardNetwork:
    """Build a trainable model whose connectivity is exactly ``topology``.

    All layers except the last use ``hidden_activation``; the last layer
    uses ``output_activation`` (identity by default so a cross-entropy loss
    can apply its own softmax).  Fully-dense submatrices become ordinary
    :class:`DenseLayer` objects unless ``force_masked`` is set (useful when
    benchmarking the masked code path itself).

    With ``sparse_training=True``, sparse submatrices (and dense ones when
    ``force_masked`` is also set) become :class:`CSRTrainableLayer` objects
    bound to ``backend``: same seeds, same numbers, O(nnz) storage, with
    forward/backward dispatched through the sparse kernel plane.
    """
    layer_count = len(topology.submatrices)
    seeds = spawn_rngs(seed, layer_count)
    layers = []
    for index, submatrix in enumerate(topology.submatrices):
        activation = output_activation if index == layer_count - 1 else hidden_activation
        is_dense = submatrix.nnz == submatrix.shape[0] * submatrix.shape[1]
        if is_dense and not force_masked:
            layers.append(
                DenseLayer(
                    submatrix.shape[0],
                    submatrix.shape[1],
                    activation=activation,
                    seed=seeds[index],
                )
            )
        elif sparse_training:
            layers.append(
                CSRTrainableLayer(
                    submatrix,
                    activation=activation,
                    seed=seeds[index],
                    fan_in_correction=fan_in_correction,
                    backend=backend,
                )
            )
        else:
            layers.append(
                MaskedSparseLayer(
                    submatrix,
                    activation=activation,
                    seed=seeds[index],
                    fan_in_correction=fan_in_correction,
                )
            )
    return FeedforwardNetwork(layers, name=name or topology.name)


def dense_model(
    layer_sizes: Sequence[int],
    *,
    hidden_activation: str = "relu",
    output_activation: str = "identity",
    seed: RngLike = None,
    name: str = "dense-model",
) -> FeedforwardNetwork:
    """Build a fully-connected model with the given layer sizes."""
    sizes = [int(s) for s in layer_sizes]
    if len(sizes) < 2 or any(s <= 0 for s in sizes):
        raise ValidationError("layer_sizes must contain at least two positive integers")
    seeds = spawn_rngs(seed, len(sizes) - 1)
    layers = []
    for i in range(len(sizes) - 1):
        activation = output_activation if i == len(sizes) - 2 else hidden_activation
        layers.append(
            DenseLayer(sizes[i], sizes[i + 1], activation=activation, seed=seeds[i])
        )
    return FeedforwardNetwork(layers, name=name)


def input_adapter_matrix(input_dim: int, topology_input: int, *, seed: RngLike = None) -> np.ndarray:
    """A fixed random projection mapping raw features onto a topology's input width.

    RadiX-Net input widths are multiples of ``N'`` and rarely match a
    dataset's raw feature count exactly; the experiment harness uses this
    deterministic projection (not trained) to adapt dimensions, following
    the usual practice of zero-padding/projecting in the sparse-training
    literature.  If the sizes already match, the identity matrix is
    returned.
    """
    if input_dim <= 0 or topology_input <= 0:
        raise ValidationError("dimensions must be positive")
    if input_dim == topology_input:
        return np.eye(input_dim)
    rng = spawn_rngs(seed, 1)[0]
    return rng.normal(0.0, 1.0 / np.sqrt(input_dim), size=(input_dim, topology_input))
