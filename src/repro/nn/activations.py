"""Activation functions with analytic derivatives.

Each activation is an :class:`Activation` instance carrying a forward map
and the derivative *as a function of the forward output* (all activations
used here admit that form, which avoids storing pre-activations).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Activation:
    """An elementwise activation: forward map plus derivative w.r.t. output."""

    name: str
    forward: Callable[[np.ndarray], np.ndarray]
    derivative_from_output: Callable[[np.ndarray], np.ndarray]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Activation({self.name!r})"


def _relu_forward(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _relu_derivative(y: np.ndarray) -> np.ndarray:
    return (y > 0.0).astype(np.float64)


def _sigmoid_forward(x: np.ndarray) -> np.ndarray:
    # numerically stable piecewise evaluation
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def _sigmoid_derivative(y: np.ndarray) -> np.ndarray:
    return y * (1.0 - y)


def _tanh_forward(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _tanh_derivative(y: np.ndarray) -> np.ndarray:
    return 1.0 - y * y


def _identity_forward(x: np.ndarray) -> np.ndarray:
    return x


def _identity_derivative(y: np.ndarray) -> np.ndarray:
    return np.ones_like(y)


relu = Activation("relu", _relu_forward, _relu_derivative)
sigmoid = Activation("sigmoid", _sigmoid_forward, _sigmoid_derivative)
tanh = Activation("tanh", _tanh_forward, _tanh_derivative)
identity = Activation("identity", _identity_forward, _identity_derivative)

_REGISTRY = {a.name: a for a in (relu, sigmoid, tanh, identity)}


def get_activation(name: str | Activation) -> Activation:
    """Look up an activation by name (or pass an Activation through)."""
    if isinstance(name, Activation):
        return name
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown activation {name!r}; available: {sorted(_REGISTRY)}"
        ) from exc


def softmax_stable(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis`` (used by the cross-entropy loss)."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)
