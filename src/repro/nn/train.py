"""Training loop.

The :class:`Trainer` owns a model, a loss, and an optimizer, and runs
minibatch gradient descent with optional validation, learning-rate
scheduling, gradient clipping, and early stopping.  It records a
:class:`TrainingHistory` used by the experiment harness to report
accuracy-versus-density curves.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.nn.data import minibatches
from repro.nn.losses import CrossEntropyLoss
from repro.nn.metrics import accuracy
from repro.nn.model import FeedforwardNetwork
from repro.utils.rng import RngLike, spawn_rngs


@dataclass
class TrainingHistory:
    """Per-epoch training curves."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)

    @property
    def best_val_accuracy(self) -> float:
        """Highest validation accuracy seen (0.0 if no validation data)."""
        return max(self.val_accuracy) if self.val_accuracy else 0.0

    @property
    def final_train_loss(self) -> float:
        """Training loss of the last completed epoch."""
        if not self.train_loss:
            raise ValidationError("no epochs have been run")
        return self.train_loss[-1]


class Trainer:
    """Minibatch gradient-descent trainer for :class:`FeedforwardNetwork`."""

    def __init__(
        self,
        model: FeedforwardNetwork,
        optimizer,
        *,
        loss=None,
        batch_size: int = 32,
        lr_schedule: Callable[[int], float] | None = None,
        gradient_clip: float | None = None,
        seed: RngLike = None,
    ) -> None:
        if batch_size <= 0:
            raise ValidationError("batch_size must be positive")
        if gradient_clip is not None and gradient_clip <= 0:
            raise ValidationError("gradient_clip must be positive when given")
        if lr_schedule is not None and not hasattr(optimizer, "learning_rate"):
            raise ValidationError(
                "lr_schedule requires an optimizer with a learning_rate "
                f"attribute; {type(optimizer).__name__} has none, so the "
                "schedule would be silently ignored"
            )
        self.model = model
        self.optimizer = optimizer
        self.loss = loss if loss is not None else CrossEntropyLoss()
        self.batch_size = int(batch_size)
        self.lr_schedule = lr_schedule
        self.gradient_clip = gradient_clip
        self.seed = seed
        self.history = TrainingHistory()
        self._epochs_trained = 0

    # ------------------------------------------------------------------ #
    def _clip_gradients(self, gradients: list[np.ndarray]) -> None:
        if self.gradient_clip is None:
            return
        total_norm = float(np.sqrt(sum(float(np.sum(g * g)) for g in gradients)))
        if total_norm > self.gradient_clip and total_norm > 0:
            scale = self.gradient_clip / total_norm
            for g in gradients:
                g *= scale

    def train_epoch(self, features: np.ndarray, targets: np.ndarray, *, epoch_seed: RngLike = None) -> float:
        """One pass over the training data; returns the mean per-sample loss.

        Batch losses are weighted by batch size, so a ragged last batch
        contributes proportionally to its sample count rather than
        counting as a full batch.
        """
        losses = []
        batch_sizes = []
        for batch_x, batch_y in minibatches(
            features, targets, self.batch_size, shuffle=True, seed=epoch_seed
        ):
            outputs = self.model.forward(batch_x, training=True)
            losses.append(self.loss.value(outputs, batch_y))
            batch_sizes.append(batch_x.shape[0])
            gradient = self.loss.gradient(outputs, batch_y)
            self.model.backward(gradient)
            grads = self.model.gradients()
            self._clip_gradients(grads)
            self.optimizer.step(self.model.parameters(), grads)
        if not losses:
            raise ValidationError("training data produced no minibatches")
        return float(np.average(losses, weights=batch_sizes))

    def evaluate(self, features: np.ndarray, targets: np.ndarray) -> tuple[float, float]:
        """Return ``(loss, accuracy)`` on a held-out set without updating weights."""
        outputs = self.model.predict(features)
        return self.loss.value(outputs, targets), accuracy(outputs, targets)

    def fit(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        *,
        epochs: int = 10,
        val_x: np.ndarray | None = None,
        val_y: np.ndarray | None = None,
        early_stopping_patience: int | None = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for up to ``epochs`` epochs, optionally with early stopping.

        Early stopping monitors validation accuracy and halts after
        ``early_stopping_patience`` epochs without improvement.

        Calling ``fit`` repeatedly continues training: the per-epoch
        shuffle seed stream advances across calls (two 1-epoch fits see
        the same shuffles as one 2-epoch fit, not the first epoch twice)
        and ``lr_schedule`` receives the global epoch index.
        """
        if epochs <= 0:
            raise ValidationError("epochs must be positive")
        has_validation = val_x is not None and val_y is not None
        if early_stopping_patience is not None and not has_validation:
            raise ValidationError("early stopping requires validation data")
        start = self._epochs_trained
        if isinstance(self.seed, np.random.Generator):
            # Generator spawning is stateful: each call advances the
            # parent's child counter, so the stream continues by itself.
            epoch_rngs = spawn_rngs(self.seed, epochs)
        else:
            # Int/None seeds build a fresh SeedSequence per call; spawning
            # is prefix-stable, so skip the children already consumed.
            epoch_rngs = spawn_rngs(self.seed, start + epochs)[start:]
        best_val = -np.inf
        epochs_without_improvement = 0
        for epoch in range(epochs):
            if self.lr_schedule is not None:
                self.optimizer.learning_rate = float(self.lr_schedule(start + epoch))
            current_lr = float(getattr(self.optimizer, "learning_rate", np.nan))
            train_loss = self.train_epoch(train_x, train_y, epoch_seed=epoch_rngs[epoch])
            self._epochs_trained += 1
            train_acc = accuracy(self.model.predict(train_x), train_y)
            self.history.train_loss.append(train_loss)
            self.history.train_accuracy.append(train_acc)
            self.history.learning_rates.append(current_lr)
            if has_validation:
                val_loss, val_acc = self.evaluate(val_x, val_y)
                self.history.val_loss.append(val_loss)
                self.history.val_accuracy.append(val_acc)
                if val_acc > best_val:
                    best_val = val_acc
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                if (
                    early_stopping_patience is not None
                    and epochs_without_improvement >= early_stopping_patience
                ):
                    break
            if verbose:  # pragma: no cover - console output
                message = f"epoch {epoch + 1}/{epochs} loss={train_loss:.4f} acc={train_acc:.4f}"
                if has_validation:
                    message += f" val_acc={self.history.val_accuracy[-1]:.4f}"
                print(message)
        return self.history
