"""Training comparison experiments (companion experiment E1).

The sparse-training companion work (Alford & Kepner, "Training Sparse
Neural Networks") trains RadiX-Net topologies against dense and pruned
networks on MNIST-class data and reports accuracy as a function of
density.  This harness reproduces that comparison on the synthetic
datasets bundled with the package:

* build topology families (RadiX-Net, random X-Net, dense, pruned dense)
  at matched layer widths;
* train each through the identical :class:`repro.nn.train.Trainer`;
* report accuracy, parameter count, and density per arm.

With ``sparse_training=True`` the sparse arms train through
:class:`repro.nn.layers.CSRTrainableLayer` -- O(nnz) storage with
forward/backward dispatched through the sparse backend kernels -- instead
of dense-masked layers; the numbers are identical for the same seed.
:func:`train_study` wraps the comparison over several datasets and emits a
JSON-serializable report (the ``repro train-study`` CLI subcommand).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.pruning import prune_model_to_topology
from repro.baselines.xnet import random_xnet
from repro.core.designer import design_for_widths
from repro.datasets.registry import load_dataset
from repro.errors import ValidationError
from repro.nn.builder import dense_model, input_adapter_matrix, model_from_topology
from repro.nn.data import one_hot, train_val_split
from repro.nn.optimizers import Adam
from repro.nn.train import Trainer
from repro.topology.fnnt import FNNT
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class ArmResult:
    """Result of training one arm (one topology family) of the comparison."""

    name: str
    density: float
    parameter_count: int
    val_accuracy: float
    train_loss: float
    epochs_run: int


@dataclass
class TrainingComparisonResult:
    """All arms of an accuracy-versus-density comparison."""

    dataset: str
    layer_widths: tuple[int, ...]
    arms: list[ArmResult] = field(default_factory=list)

    def arm(self, name: str) -> ArmResult:
        """Look up an arm by name."""
        for result in self.arms:
            if result.name == name:
                return result
        raise KeyError(f"no arm named {name!r}; have {[a.name for a in self.arms]}")

    @property
    def dense_accuracy(self) -> float:
        """Validation accuracy of the dense reference arm."""
        return self.arm("dense").val_accuracy

    def accuracy_gap(self, name: str) -> float:
        """Dense accuracy minus the named arm's accuracy (positive = dense better)."""
        return self.dense_accuracy - self.arm(name).val_accuracy


def train_topology_on_dataset(
    topology: FNNT | None,
    features: np.ndarray,
    labels: np.ndarray,
    *,
    num_classes: int,
    layer_widths: tuple[int, ...] | None = None,
    epochs: int = 20,
    learning_rate: float = 5e-3,
    batch_size: int = 32,
    seed: RngLike = 0,
    name: str = "model",
    sparse_training: bool = False,
) -> tuple[ArmResult, list[np.ndarray]]:
    """Train one model (sparse if a topology is given, dense otherwise).

    Returns the :class:`ArmResult` plus the trained weight matrices (used
    by the pruning arm, which prunes the trained dense model).

    The dataset's feature dimension is adapted to the topology's input
    width with a fixed random projection, and the number of classes is
    padded to the topology's output width, exactly as described in
    DESIGN.md (the RadiX-Net layer widths are multiples of ``N'``).

    ``sparse_training`` trains sparse submatrices through
    :class:`~repro.nn.layers.CSRTrainableLayer` (O(nnz) storage, backend
    kernels) instead of dense-masked layers; dense arms are unaffected.
    """
    targets = one_hot(labels, num_classes)
    if topology is not None:
        model = model_from_topology(
            topology, seed=seed, name=name, sparse_training=sparse_training
        )
    else:
        if layer_widths is None:
            raise ValueError("layer_widths required for the dense arm")
        model = dense_model(layer_widths, seed=seed, name=name)
    adapter = input_adapter_matrix(features.shape[1], model.input_size, seed=seed)
    projected = np.asarray(features, dtype=np.float64) @ adapter
    if model.output_size < num_classes:
        raise ValueError(
            f"model output width {model.output_size} is smaller than the number "
            f"of classes {num_classes}"
        )
    if model.output_size > num_classes:
        targets = np.pad(targets, ((0, 0), (0, model.output_size - num_classes)))
    train_x, train_y, val_x, val_y = train_val_split(projected, targets, val_fraction=0.25, seed=seed)
    trainer = Trainer(model, Adam(learning_rate), batch_size=batch_size, seed=seed)
    history = trainer.fit(train_x, train_y, epochs=epochs, val_x=val_x, val_y=val_y)
    result = ArmResult(
        name=name,
        density=model.realized_topology_density(),
        parameter_count=model.parameter_count,
        val_accuracy=history.best_val_accuracy,
        train_loss=history.final_train_loss,
        epochs_run=history.epochs_run,
    )
    return result, model.weight_matrices()


#: All comparison arms, in execution order.
ALL_ARMS: tuple[str, ...] = ("radix-net", "random-xnet", "dense", "pruned")


def _validate_arms(arms: tuple[str, ...] | list[str]) -> tuple[str, ...]:
    selected = tuple(arms)
    if not selected:
        raise ValidationError("at least one arm must be selected")
    unknown = [a for a in selected if a not in ALL_ARMS]
    if unknown:
        raise ValidationError(f"unknown arms {unknown}; available: {list(ALL_ARMS)}")
    if len(set(selected)) != len(selected):
        raise ValidationError(f"duplicate arms in {list(selected)}")
    if "random-xnet" in selected and "radix-net" not in selected:
        raise ValidationError(
            "the random-xnet arm matches the radix-net arm's density; "
            "select radix-net as well"
        )
    if "pruned" in selected and not {"dense", "radix-net"} <= set(selected):
        raise ValidationError(
            "the pruned arm prunes the trained dense model to the radix-net "
            "density; select dense and radix-net as well"
        )
    # run in canonical order regardless of how the caller listed them
    return tuple(a for a in ALL_ARMS if a in selected)


def accuracy_vs_density(
    *,
    dataset: str = "gaussian_mixture",
    num_samples: int = 800,
    num_classes: int = 4,
    layer_widths: tuple[int, ...] = (16, 32, 32, 8),
    epochs: int = 20,
    seed: int = 0,
    dataset_kwargs: dict | None = None,
    arms: tuple[str, ...] = ALL_ARMS,
    sparse_training: bool = False,
) -> TrainingComparisonResult:
    """Run the accuracy-vs-density comparison: RadiX-Net, random X-Net, dense, pruned.

    All sparse arms are built at (approximately) the same layer widths as
    the dense arm; the pruned arm prunes the trained dense model down to
    the RadiX-Net's density and retrains briefly.  ``arms`` selects a
    subset (dependencies are validated: random-xnet and pruned need
    radix-net for density matching, pruned additionally needs dense);
    ``sparse_training`` trains the sparse arms through CSR layers and
    backend kernels instead of dense masking.
    """
    selected = _validate_arms(arms)
    kwargs = dict(dataset_kwargs or {})
    if dataset in ("gaussian_mixture",):
        kwargs.setdefault("num_classes", num_classes)
    features, labels = load_dataset(dataset, num_samples, seed=seed, **kwargs)
    result = TrainingComparisonResult(dataset=dataset, layer_widths=tuple(layer_widths))

    radix_arm = None
    radix_net = None
    if "radix-net" in selected:
        # RadiX-Net arm: design a spec matching the requested layer widths.
        design = design_for_widths(list(layer_widths))
        radix_topology = design.spec
        from repro.core.radixnet import generate_from_spec

        radix_net = generate_from_spec(radix_topology)
        radix_arm, _ = train_topology_on_dataset(
            radix_net,
            features,
            labels,
            num_classes=num_classes,
            epochs=epochs,
            seed=seed,
            name="radix-net",
            sparse_training=sparse_training,
        )
        result.arms.append(radix_arm)

    if "random-xnet" in selected:
        # Random X-Net arm at matched density: choose out-degree to match
        # the RadiX-Net arm's density as closely as possible.
        matched_degree = max(1, int(round(radix_arm.density * max(layer_widths))))
        xnet_topology = random_xnet(radix_net.layer_sizes, matched_degree, seed=seed)
        xnet_arm, _ = train_topology_on_dataset(
            xnet_topology,
            features,
            labels,
            num_classes=num_classes,
            epochs=epochs,
            seed=seed,
            name="random-xnet",
            sparse_training=sparse_training,
        )
        result.arms.append(xnet_arm)

    if "dense" in selected:
        # Dense arm on the same layer widths as the RadiX-Net.
        dense_widths = radix_net.layer_sizes if radix_net is not None else tuple(layer_widths)
        dense_arm, dense_weights = train_topology_on_dataset(
            None,
            features,
            labels,
            num_classes=num_classes,
            layer_widths=dense_widths,
            epochs=epochs,
            seed=seed,
            name="dense",
        )
        result.arms.append(dense_arm)

    if "pruned" in selected:
        # Pruned arm: prune the trained dense model to the RadiX-Net density and retrain.
        pruned_topology = prune_model_to_topology(dense_weights, radix_arm.density, name="pruned")
        pruned_arm, _ = train_topology_on_dataset(
            pruned_topology,
            features,
            labels,
            num_classes=num_classes,
            epochs=max(1, epochs // 2),
            seed=seed,
            name="pruned",
            sparse_training=sparse_training,
        )
        result.arms.append(pruned_arm)
    return result


def train_study(
    *,
    datasets: tuple[str, ...] = ("gaussian_mixture", "two_spirals"),
    num_samples: int = 600,
    num_classes: int = 4,
    layer_widths: tuple[int, ...] = (16, 32, 32, 8),
    epochs: int = 10,
    seed: int = 0,
    arms: tuple[str, ...] = ALL_ARMS,
    sparse_training: bool = True,
) -> dict:
    """The accuracy-versus-density frontier over several datasets, as JSON.

    Runs :func:`accuracy_vs_density` per dataset and collects everything
    into one JSON-serializable report: per-arm accuracy/density/parameter
    counts plus the accuracy gap to the dense reference (when the dense
    arm is selected).  ``num_classes`` applies to class-count-configurable
    datasets (``gaussian_mixture``); others use their intrinsic classes.
    This is the engine behind the ``repro train-study`` CLI subcommand.
    """
    if not datasets:
        raise ValidationError("at least one dataset is required")
    selected = _validate_arms(arms)
    report: dict = {
        "config": {
            "datasets": list(datasets),
            "num_samples": int(num_samples),
            "layer_widths": [int(w) for w in layer_widths],
            "epochs": int(epochs),
            "seed": int(seed),
            "arms": list(selected),
            "sparse_training": bool(sparse_training),
        },
        "datasets": {},
    }
    for dataset in datasets:
        features, labels = load_dataset(dataset, num_samples, seed=seed)
        classes = int(np.max(labels)) + 1 if dataset != "gaussian_mixture" else int(num_classes)
        del features
        comparison = accuracy_vs_density(
            dataset=dataset,
            num_samples=num_samples,
            num_classes=classes,
            layer_widths=layer_widths,
            epochs=epochs,
            seed=seed,
            arms=selected,
            sparse_training=sparse_training,
        )
        entry: dict = {"num_classes": classes, "arms": {}}
        for arm in comparison.arms:
            entry["arms"][arm.name] = {
                "density": arm.density,
                "parameter_count": arm.parameter_count,
                "val_accuracy": arm.val_accuracy,
                "train_loss": arm.train_loss,
                "epochs_run": arm.epochs_run,
            }
        if "dense" in entry["arms"]:
            entry["accuracy_gap_vs_dense"] = {
                arm.name: comparison.accuracy_gap(arm.name)
                for arm in comparison.arms
                if arm.name != "dense"
            }
        report["datasets"][dataset] = entry
    return report
