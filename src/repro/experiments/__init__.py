"""Experiment harnesses.

These modules contain the logic behind the benchmark suite (one benchmark
per paper figure/table plus the companion experiments), factored into the
library so the examples, the tests, and ``pytest-benchmark`` targets all
drive the same code.

* :mod:`repro.experiments.figures` -- regenerate the data behind every
  figure of the paper (Figures 1-7) and the equation-(4)-(6) table;
* :mod:`repro.experiments.training` -- the accuracy-versus-density
  training comparison (companion experiment E1);
* :mod:`repro.experiments.scaling` -- Graph Challenge inference scaling
  (companion experiment E2) and the brain-scale sizing table (E3).
"""

from repro.experiments.figures import (
    figure1_mixed_radix_data,
    figure2_emr_data,
    figure3_fnnt_data,
    figure4_adjacency_data,
    figure5_kronecker_data,
    figure6_generator_scaling,
    figure7_density_surface,
    equation4_density_table,
    theorem1_path_count_table,
)
from repro.experiments.training import (
    ALL_ARMS,
    TrainingComparisonResult,
    accuracy_vs_density,
    train_study,
    train_topology_on_dataset,
)
from repro.experiments.scaling import (
    graph_challenge_scaling,
    brain_sizing_table,
    width_ablation,
    variance_ablation,
    diversity_table,
)

__all__ = [
    "figure1_mixed_radix_data",
    "figure2_emr_data",
    "figure3_fnnt_data",
    "figure4_adjacency_data",
    "figure5_kronecker_data",
    "figure6_generator_scaling",
    "figure7_density_surface",
    "equation4_density_table",
    "theorem1_path_count_table",
    "ALL_ARMS",
    "TrainingComparisonResult",
    "accuracy_vs_density",
    "train_study",
    "train_topology_on_dataset",
    "graph_challenge_scaling",
    "brain_sizing_table",
    "width_ablation",
    "variance_ablation",
    "diversity_table",
]
