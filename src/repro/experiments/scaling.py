"""Scaling and ablation experiments (companion experiments E2, E3; ablations A1-A3)."""

from __future__ import annotations

import numpy as np

from repro.analysis.diversity import (
    count_explicit_xnet_configurations,
    count_radixnet_configurations,
)
from repro.brain.sizing import (
    BrainScaleTarget,
    HUMAN_BRAIN,
    MOUSE_BRAIN,
    instantiate_scaled,
    size_radixnet_for_target,
)
from repro.challenge.generator import (
    challenge_input_batch,
    generate_challenge_network,
    scale_series,
)
from repro.challenge.inference import sparse_dnn_inference
from repro.challenge.verify import verify_categories
from repro.core.density import approximate_density, exact_density
from repro.core.radixnet import RadixNetSpec
from repro.numeral.factorization import radix_lists_with_product


def graph_challenge_scaling(
    *,
    base_neurons: int = 16,
    sizes: int = 3,
    num_layers: int = 12,
    batch_size: int = 32,
    connections: int = 4,
    seed: int = 0,
) -> list[dict[str, float]]:
    """Experiment E2: inference throughput as the network scales (x4 per step).

    Mirrors the Graph Challenge scaling study: neurons per layer grow by a
    factor of four per step while layers and batch stay fixed; the reported
    figure of merit is edges traversed per second.  Each row also records
    whether the sparse kernel agreed with the dense reference.
    """
    rows = []
    for neurons in scale_series(base_neurons, sizes):
        network = generate_challenge_network(
            neurons, num_layers, connections=connections, seed=seed
        )
        batch = challenge_input_batch(neurons, batch_size, seed=seed)
        result = sparse_dnn_inference(network, batch)
        rows.append(
            {
                "neurons": float(neurons),
                "layers": float(num_layers),
                "edges": float(network.topology.num_edges),
                "seconds": result.total_seconds,
                "edges_per_second": result.edges_per_second,
                "categories": float(result.categories.size),
                "verified": float(verify_categories(network, batch)),
            }
        )
    return rows


def brain_sizing_table(*, scale: float = 2e-6, max_layers: int = 4) -> list[dict[str, float]]:
    """Experiment E3: RadiX-Net parameters matching brain-like size/sparsity targets."""
    rows = []
    for target in (MOUSE_BRAIN, HUMAN_BRAIN):
        sizing = size_radixnet_for_target(target)
        scaled = instantiate_scaled(sizing, scale=scale, max_layers=max_layers)
        rows.append(
            {
                "target": target.name,
                "target_neurons": target.neurons,
                "target_synapses": target.synapses,
                "degree": float(sizing.radix),
                "neurons_per_layer": float(sizing.neurons_per_layer),
                "achieved_neurons": sizing.achieved_neurons,
                "achieved_synapses": sizing.achieved_synapses,
                "neuron_error": sizing.neuron_error,
                "synapse_error": sizing.synapse_error,
                "scaled_instance_edges": float(scaled.num_edges),
                "scaled_instance_density": scaled.density(),
            }
        )
    return rows


def width_ablation(
    *,
    systems: tuple[tuple[int, ...], ...] = ((2, 2), (2, 2)),
    width_choices: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> list[dict[str, float]]:
    """Ablation A1: the effect of the dense widths D on density.

    Equation (5) predicts the effect is negligible when the radix variance
    is small; the rows report the exact density (eq. 4) as the interior
    widths grow, so the benchmark can assert the spread stays within the
    formula's error bound.
    """
    rows = []
    num_radices = sum(len(s) for s in systems)
    for width in width_choices:
        widths = [1] + [width] * (num_radices - 1) + [1]
        spec = RadixNetSpec(list(systems), widths)
        rows.append(
            {
                "interior_width": float(width),
                "exact_density": exact_density(spec),
                "approx_density": approximate_density(spec),
                "relative_gap": abs(exact_density(spec) - approximate_density(spec))
                / approximate_density(spec),
            }
        )
    return rows


def variance_ablation(*, n_prime: int = 36, length: int = 3) -> list[dict[str, float]]:
    """Ablation A2: accuracy of the eq.-(5) approximation vs radix variance.

    All radix lists of the given length and product are enumerated; the
    relative error between eq. (4) and eq. (5) is reported together with
    the list's variance, so the benchmark can assert the error grows with
    variance (the paper's 'sufficiently small variance' caveat).
    """
    rows = []
    for radices in radix_lists_with_product(n_prime, max_length=length):
        if len(radices) != length:
            continue
        spec = RadixNetSpec([radices, (n_prime,)], [1] * (length + 2))
        mean = float(np.mean(spec.flattened_radices))
        variance = float(np.var(radices))
        rows.append(
            {
                "radices": radices,
                "variance": variance,
                "exact_density": exact_density(spec),
                "approx_density": approximate_density(spec),
                "relative_error": abs(exact_density(spec) - approximate_density(spec))
                / exact_density(spec),
            }
        )
    rows.sort(key=lambda row: row["variance"])
    return rows


def diversity_table(
    *,
    n_primes: tuple[int, ...] = (8, 12, 16, 24, 36, 48, 64),
    num_systems: int = 2,
) -> list[dict[str, float]]:
    """Ablation A3: RadiX-Net configuration count vs explicit X-Net count.

    Substantiates the diversity claim of the abstract: the RadiX-Net count
    grows with the divisor structure of ``N'`` while the explicit X-Net
    count grows only linearly in the layer width.
    """
    rows = []
    for n_prime in n_primes:
        radix_count = count_radixnet_configurations(n_prime, num_systems)
        xnet_count = count_explicit_xnet_configurations(n_prime)
        rows.append(
            {
                "n_prime": float(n_prime),
                "radixnet_configurations": float(radix_count),
                "explicit_xnet_configurations": float(xnet_count),
                "ratio": radix_count / xnet_count,
            }
        )
    return rows
