"""Regeneration of the data behind every figure of the paper.

The paper is a construction paper; its figures illustrate the construction
and its density behaviour rather than plotting measurements.  Each function
here rebuilds the underlying object with this package and returns the
quantities a reader would extract from the corresponding figure, so the
benchmark suite can both time the construction and assert its shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.dense import dense_fnnt
from repro.core.density import density_surface, exact_density, approximate_density, asymptotic_density
from repro.core.mixed_radix_topology import decision_tree_leaves, mixed_radix_topology
from repro.core.radixnet import (
    RadixNetSpec,
    generate_extended_mixed_radix,
    generate_from_spec,
    generate_radixnet,
)
from repro.core.theory import (
    predicted_radixnet_path_count,
    verify_lemma_1,
    verify_lemma_2,
    verify_theorem_1,
)
from repro.topology.fnnt import FNNT
from repro.topology.properties import uniform_path_count
from repro.utils.timing import Timer


# --------------------------------------------------------------------------- #
# Figure 1: the mixed-radix topology for N = (2, 2, 2)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Figure1Data:
    """Reproduction of Figure 1: N=(2,2,2) as eight overlapping decision trees."""

    topology: FNNT
    layer_sizes: tuple[int, ...]
    per_layer_out_degree: tuple[int, ...]
    decision_tree_leaf_sets: tuple[tuple[int, ...], ...]
    symmetric: bool


def figure1_mixed_radix_data(radices: tuple[int, ...] = (2, 2, 2)) -> Figure1Data:
    """Build the Figure-1 mixed-radix topology and its decision-tree view."""
    topology = mixed_radix_topology(radices)
    out_degrees = tuple(int(w.row_degrees()[0]) for w in topology.submatrices)
    n_prime = topology.layer_sizes[0]
    leaves = tuple(tuple(sorted(decision_tree_leaves(radices, root))) for root in range(n_prime))
    return Figure1Data(
        topology=topology,
        layer_sizes=topology.layer_sizes,
        per_layer_out_degree=out_degrees,
        decision_tree_leaf_sets=leaves,
        symmetric=topology.is_symmetric(),
    )


# --------------------------------------------------------------------------- #
# Figure 2: concatenation of mixed-radix topologies (EMR) and constraints
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Figure2Data:
    """Reproduction of Figure 2: an EMR topology from several systems."""

    systems: tuple[tuple[int, ...], ...]
    n_prime: int
    topology: FNNT
    path_count: int
    lemma2_prediction: int
    symmetric: bool


def figure2_emr_data(
    systems: tuple[tuple[int, ...], ...] = ((3, 3, 4), (6, 6), (36,), (6,)),
) -> Figure2Data:
    """Build the Figure-2 style concatenation (products 36, 36, 36, last divides 36)."""
    check = verify_lemma_2(list(systems))
    topology = generate_extended_mixed_radix(list(systems))
    return Figure2Data(
        systems=systems,
        n_prime=int(np.prod(systems[0])),
        topology=topology,
        path_count=check.measured_paths,
        lemma2_prediction=check.predicted_paths,
        symmetric=check.symmetric,
    )


# --------------------------------------------------------------------------- #
# Figure 3: FNNTs on a shared node collection; the dense one is unique
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Figure3Data:
    """Reproduction of Figure 3: sparse vs dense FNNT on the same layers."""

    layer_sizes: tuple[int, ...]
    dense_edges: int
    sparse_edges: int
    dense_density: float
    sparse_density: float


def figure3_fnnt_data(layer_sizes: tuple[int, ...] = (3, 3, 2, 3)) -> Figure3Data:
    """Build the dense FNNT of Figure 3 and a sparse sub-FNNT for contrast."""
    dense = dense_fnnt(layer_sizes)
    sparse = mixed_radix_topology((3,), name="sparse-G'") if len(set(layer_sizes)) == 1 else None
    # A generic sparse FNNT on the same layers: keep a cyclic single edge +
    # one extra per node, built from the dense one by masking.
    submatrices = []
    for w in dense.submatrices:
        dense_block = w.to_dense()
        rows, cols = dense_block.shape
        mask = np.zeros_like(dense_block)
        for r in range(rows):
            mask[r, r % cols] = 1.0
            mask[r, (r + 1) % cols] = 1.0
        submatrices.append(mask)
    sparse = FNNT(submatrices, name="G'")
    return Figure3Data(
        layer_sizes=tuple(layer_sizes),
        dense_edges=dense.num_edges,
        sparse_edges=sparse.num_edges,
        dense_density=dense.density(),
        sparse_density=sparse.density(),
    )


# --------------------------------------------------------------------------- #
# Figure 4: adjacency matrix / adjacency submatrix block structure
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Figure4Data:
    """Reproduction of Figure 4: the block super-diagonal structure of A."""

    topology: FNNT
    total_nodes: int
    adjacency_nnz: int
    block_structure_valid: bool
    nilpotency_index: int


def figure4_adjacency_data(layer_sizes: tuple[int, ...] = (3, 3, 2, 3)) -> Figure4Data:
    """Assemble the full adjacency matrix of a small FNNT and check its structure."""
    from repro.sparse.ops import matrix_power

    dense = dense_fnnt(layer_sizes)
    adjacency = dense.full_adjacency()
    # validity: nonzeros confined to the blocks (rows of layer i, cols of layer i+1)
    offsets = np.concatenate([[0], np.cumsum(dense.layer_sizes)])
    coo = adjacency.to_coo()
    valid = True
    for r, c in zip(coo.rows, coo.cols):
        layer_of_row = int(np.searchsorted(offsets, r, side="right") - 1)
        layer_of_col = int(np.searchsorted(offsets, c, side="right") - 1)
        if layer_of_col != layer_of_row + 1:
            valid = False
            break
    # nilpotency: A^(num_layers) has nonzeros only in the input-output block;
    # A^(num_layers + ...) eventually vanishes entirely for a DAG.
    power = adjacency
    index = 1
    while power.nnz > 0 and index <= dense.num_layers + 1:
        power = matrix_power(adjacency, index + 1)
        index += 1
    return Figure4Data(
        topology=dense,
        total_nodes=dense.num_nodes,
        adjacency_nnz=adjacency.nnz,
        block_structure_valid=valid,
        nilpotency_index=index,
    )


# --------------------------------------------------------------------------- #
# Figure 5: Kronecker expansion with dense widths
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Figure5Data:
    """Reproduction of Figure 5: the Kronecker-product expansion step."""

    spec: RadixNetSpec
    base_layer_sizes: tuple[int, ...]
    expanded_layer_sizes: tuple[int, ...]
    expanded_edges: int
    symmetric: bool
    path_count: int
    predicted_path_count: int


def figure5_kronecker_data(
    systems: tuple[tuple[int, ...], ...] = ((2, 2), (2, 2)),
    widths: tuple[int, ...] = (3, 5, 4, 2, 2),
) -> Figure5Data:
    """Build the Figure-5 style expansion (dense widths like D = 3, 5, 4, 2)."""
    spec = RadixNetSpec(list(systems), list(widths), name="figure5")
    base = generate_extended_mixed_radix(list(systems))
    expanded = generate_from_spec(spec)
    return Figure5Data(
        spec=spec,
        base_layer_sizes=base.layer_sizes,
        expanded_layer_sizes=expanded.layer_sizes,
        expanded_edges=expanded.num_edges,
        symmetric=expanded.is_symmetric(),
        path_count=uniform_path_count(expanded),
        predicted_path_count=predicted_radixnet_path_count(spec),
    )


# --------------------------------------------------------------------------- #
# Figure 6: the generator algorithm -- construction-time scaling
# --------------------------------------------------------------------------- #
def figure6_generator_scaling(
    n_primes: tuple[int, ...] = (8, 16, 32, 64, 128),
    *,
    width: int = 2,
) -> list[dict[str, float]]:
    """Time the Figure-6 generator across a range of N' values.

    Returns one row per ``N'`` with the construction time, edge count, and
    edges-per-second; the benchmark asserts the edge counts match the
    closed form and reports the timing series.
    """
    from repro.numeral.factorization import balanced_radix_list
    from repro.core.radixnet import radixnet_edge_count

    rows = []
    for n_prime in n_primes:
        radices = balanced_radix_list(n_prime, 2) if n_prime > 3 else (n_prime,)
        spec = RadixNetSpec([radices, radices], [width] * (2 * len(radices) + 1))
        timer = Timer()
        with timer:
            topology = generate_from_spec(spec)
        rows.append(
            {
                "n_prime": float(n_prime),
                "edges": float(topology.num_edges),
                "predicted_edges": float(radixnet_edge_count(spec)),
                "seconds": timer.elapsed,
                "edges_per_second": topology.num_edges / timer.elapsed if timer.elapsed else float("inf"),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Figure 7: the density surface over (mu, d)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Figure7Data:
    """Reproduction of Figure 7: density as a function of mu and d."""

    mus: tuple[int, ...]
    depths: tuple[int, ...]
    formula_surface: np.ndarray
    constructed_surface: np.ndarray
    max_relative_error: float


def figure7_density_surface(
    mus: tuple[int, ...] = (2, 3, 4, 5, 6, 8, 10),
    depths: tuple[int, ...] = (1, 2, 3, 4, 5),
) -> Figure7Data:
    """Compute the Figure-7 surface from formula (6) and from real constructions."""
    from repro.core.density import measured_density_grid

    formula = density_surface(mus, depths)
    constructed = measured_density_grid(mus, depths)
    relative_error = np.abs(constructed - formula) / formula
    return Figure7Data(
        mus=tuple(mus),
        depths=tuple(depths),
        formula_surface=formula,
        constructed_surface=constructed,
        max_relative_error=float(relative_error.max()),
    )


# --------------------------------------------------------------------------- #
# Equations (4)-(6) and Theorem 1 tables
# --------------------------------------------------------------------------- #
def equation4_density_table() -> list[dict[str, float]]:
    """Exact vs approximate vs asymptotic density for a panel of specifications.

    One row per specification with the measured density of the constructed
    topology included so the benchmark can assert formula == measurement.
    """
    panel = [
        (((2, 2), (2, 2)), (1, 2, 2, 2, 1)),
        (((2, 2), (4,)), (1, 3, 3, 1)),
        (((3, 3), (9,)), (2, 2, 2, 2)),
        (((2, 4), (8,)), (1, 2, 2, 1)),
        (((2, 2, 2), (2, 2, 2)), (1, 1, 2, 2, 1, 1, 1)),
        (((4, 4), (4, 4)), (1, 2, 2, 2, 1)),
    ]
    rows = []
    for systems, widths in panel:
        spec = RadixNetSpec(list(systems), list(widths))
        topology = generate_from_spec(spec)
        mu = spec.mean_radix()
        d = len(spec.flattened_radices) / spec.num_systems
        rows.append(
            {
                "n_prime": float(spec.n_prime),
                "exact_density_eq4": exact_density(spec),
                "approx_density_eq5": approximate_density(spec),
                "asymptotic_eq6": asymptotic_density(mu, np.log(spec.n_prime) / np.log(mu)),
                "measured_density": topology.density(),
            }
        )
    return rows


def theorem1_path_count_table() -> list[dict[str, object]]:
    """Predicted vs measured path counts for a panel of RadiX-Nets (Theorem 1)."""
    panel = [
        ([(2, 2), (2, 2)], [1, 2, 2, 2, 1]),
        ([(2, 3), (6,)], [1, 2, 2, 1]),
        ([(3, 3), (3,)], [2, 1, 1, 2]),
        ([(2, 2, 2), (4, 2)], [1, 1, 1, 2, 2, 1]),
        ([(4,), (2, 2)], [1, 2, 2, 1]),
    ]
    rows = []
    for systems, widths in panel:
        spec = RadixNetSpec(systems, widths)
        check = verify_theorem_1(spec)
        rows.append(
            {
                "systems": tuple(tuple(s) for s in systems),
                "widths": tuple(widths),
                "predicted": check.predicted_paths,
                "measured": check.measured_paths,
                "symmetric": check.symmetric,
                "matches": check.matches_prediction,
            }
        )
    return rows
