"""Lightweight timing and resource helpers used by benchmarks and the CLI."""

from __future__ import annotations

import functools
import sys
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any, TypeVar

T = TypeVar("T")


def peak_rss_mb() -> float | None:
    """Peak resident set size of this process in MB (``None`` if unavailable).

    ``ru_maxrss`` is reported in kilobytes on Linux but in *bytes* on
    macOS; both are normalized here.  On platforms without the
    ``resource`` module (e.g. Windows), falls back to ``psutil`` when
    installed; otherwise returns ``None`` -- never a fake ``0.0`` or
    ``nan`` that would be recorded in benchmark JSON as a real
    measurement.  Callers should render ``None`` as ``"n/a"`` (see
    :func:`format_rss_mb`).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        pass
    else:
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":  # pragma: no cover - exercised on macOS only
            return peak / 2**20
        return peak / 1024.0
    try:  # pragma: no cover - only reachable without `resource`
        import psutil
    except ImportError:  # pragma: no cover
        return None
    try:  # pragma: no cover
        # no ru_maxrss analogue: current RSS is the best available proxy
        return psutil.Process().memory_info().rss / 2**20
    except Exception:  # pragma: no cover - defensive: psutil platform quirks
        return None


def format_rss_mb(value: float | None, *, precision: int = 1) -> str:
    """Render a :func:`peak_rss_mb` reading for reports (``"n/a"`` when None)."""
    if value is None:
        return "n/a"
    return f"{value:.{precision}f} MB"


@dataclass
class Timer:
    """Accumulating wall-clock timer usable as a context manager.

    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._start is None:
            return
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap
        self._start = None

    @property
    def mean(self) -> float:
        """Mean lap duration in seconds (0.0 if no laps recorded)."""
        return self.elapsed / len(self.laps) if self.laps else 0.0

    def reset(self) -> None:
        """Discard all recorded laps."""
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None


def timed(func: Callable[..., T]) -> Callable[..., tuple[T, float]]:
    """Decorator returning ``(result, seconds)`` for each call of ``func``."""

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> tuple[T, float]:
        start = time.perf_counter()
        result = func(*args, **kwargs)
        return result, time.perf_counter() - start

    return wrapper
