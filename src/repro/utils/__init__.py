"""Shared utilities: validation, RNG handling, timing, logging."""

from repro.utils.validation import (
    check_positive_int,
    check_radix_list,
    check_probability,
    check_array_2d,
    check_same_length,
)
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer, format_rss_mb, peak_rss_mb, timed

__all__ = [
    "check_positive_int",
    "check_radix_list",
    "check_probability",
    "check_array_2d",
    "check_same_length",
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "timed",
    "peak_rss_mb",
    "format_rss_mb",
]
