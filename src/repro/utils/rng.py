"""Random number generator plumbing.

All stochastic code in the package accepts either ``None``, an integer
seed, or an existing :class:`numpy.random.Generator` and normalizes it via
:func:`ensure_rng`.  This keeps experiments reproducible and lets parallel
workers obtain statistically independent streams via :func:`spawn_rngs`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

RngLike = int | np.random.Generator | None


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` gives a fresh nondeterministic generator; an integer gives a
    deterministic one; an existing generator is passed through unchanged.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, bool):
        raise ValidationError("seed must be an int, Generator, or None; got bool")
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise ValidationError(
        f"seed must be an int, numpy Generator, or None, got {type(seed).__name__}"
    )


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning so the streams are
    statistically independent regardless of how workers interleave.
    """
    if count < 0:
        raise ValidationError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        children = seed.bit_generator.seed_seq.spawn(count)  # type: ignore[attr-defined]
        return [np.random.default_rng(c) for c in children]
    seq = np.random.SeedSequence(seed if seed is None or not isinstance(seed, bool) else None)
    return [np.random.default_rng(c) for c in seq.spawn(count)]
