"""Injectable time sources for timing-sensitive components.

Threaded pipeline pieces -- the bounded :class:`repro.parallel.pipeline.Prefetcher`,
the :class:`repro.serve.batcher.MicroBatcher` -- need to *wait*: for a
queue slot, for the next request, for a micro-batch window to close.
Hard-coding ``time.monotonic()`` / ``Event.wait(timeout)`` into those
waits makes their tests timing-sensitive (every assertion races a real
clock), so the components take a :class:`Clock` instead:

* :class:`SystemClock` -- the production implementation, a thin veneer
  over :func:`time.monotonic` and :meth:`threading.Event.wait`;
* :class:`FakeClock` -- a deterministic test double whose ``wait`` never
  blocks: it observes an already-set event immediately, otherwise
  advances *virtual* time by the full timeout and reports the timeout.
  Tests drive components single-threaded (no worker thread, no sleeps)
  and assert on the exact sequence of waits the component performed.

``FakeClock`` is for single-threaded deterministic tests only: its
``wait`` cannot park a thread, so a component that spins "wait until the
event is set" would busy-loop under it.  Components therefore expose
non-blocking entry points (e.g. ``MicroBatcher.run_once(wait=False)``)
for fake-clock drivers.
"""

from __future__ import annotations

import threading
import time
from typing import Protocol


class Clock(Protocol):
    """What a timing-sensitive component needs from a time source."""

    def monotonic(self) -> float:
        """Current time in seconds; only differences are meaningful."""
        ...  # pragma: no cover - protocol

    def wait(self, event: threading.Event, timeout: float) -> bool:
        """Wait up to ``timeout`` seconds for ``event``; True if it is set."""
        ...  # pragma: no cover - protocol


class SystemClock:
    """The real wall clock: ``time.monotonic`` + blocking ``Event.wait``."""

    def monotonic(self) -> float:
        return time.monotonic()

    def wait(self, event: threading.Event, timeout: float) -> bool:
        return event.wait(timeout)


class FakeClock:
    """Deterministic virtual clock for single-threaded tests.

    ``wait`` never parks the calling thread: an already-set event is
    observed at once (virtual time does not move), otherwise virtual
    time jumps forward by the full ``timeout`` and the wait reports a
    timeout -- exactly the two outcomes a real timed wait can have,
    minus the nondeterministic in-between.  Every wait's timeout is
    recorded in :attr:`waits` so tests can assert on the component's
    waiting behaviour (e.g. "the batcher waited out the remaining batch
    window, not a fresh full window").
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.waits: list[float] = []

    def monotonic(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move virtual time forward (a test standing in for elapsed work)."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards ({seconds})")
        self._now += float(seconds)

    def wait(self, event: threading.Event, timeout: float) -> bool:
        self.waits.append(float(timeout))
        if event.is_set():
            return True
        self._now += max(0.0, float(timeout))
        return False
