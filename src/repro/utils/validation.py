"""Argument validation helpers shared across the package.

These helpers raise :class:`repro.errors.ValidationError` (a subclass of
``ValueError``) with descriptive messages.  Keeping validation centralized
makes the construction modules short and keeps error messages consistent.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.errors import ShapeError, ValidationError


def check_positive_int(value: Any, name: str, *, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer ``>= minimum`` and return it.

    Accepts Python ints and NumPy integer scalars; rejects bools and floats
    (including integral floats such as ``3.0``) because silent coercion of
    radices or layer widths hides caller bugs.
    """
    if isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got bool {value!r}")
    if isinstance(value, (int, np.integer)):
        ivalue = int(value)
    else:
        raise ValidationError(
            f"{name} must be an integer, got {type(value).__name__} {value!r}"
        )
    if ivalue < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {ivalue}")
    return ivalue


def check_radix_list(radices: Sequence[Any], name: str = "radices") -> tuple[int, ...]:
    """Validate a mixed-radix list: non-empty, all integer radices >= 2."""
    if isinstance(radices, (str, bytes)):
        raise ValidationError(f"{name} must be a sequence of integers, got a string")
    try:
        items = list(radices)
    except TypeError as exc:
        raise ValidationError(f"{name} must be a sequence of integers") from exc
    if not items:
        raise ValidationError(f"{name} must not be empty")
    return tuple(
        check_positive_int(r, f"{name}[{i}]", minimum=2) for i, r in enumerate(items)
    )


def check_probability(value: Any, name: str) -> float:
    """Validate a probability in the closed interval [0, 1]."""
    try:
        fvalue = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a real number in [0, 1]") from exc
    if not np.isfinite(fvalue) or not 0.0 <= fvalue <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    return fvalue


def check_array_2d(array: Any, name: str) -> np.ndarray:
    """Coerce ``array`` to a 2-D ``ndarray``; raise ``ShapeError`` otherwise."""
    arr = np.asarray(array)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-dimensional, got ndim={arr.ndim}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ShapeError(f"{name} must be non-empty, got shape {arr.shape}")
    return arr


def check_same_length(a: Sequence[Any], b: Sequence[Any], name_a: str, name_b: str) -> None:
    """Raise if two sequences differ in length."""
    if len(a) != len(b):
        raise ValidationError(
            f"{name_a} and {name_b} must have the same length "
            f"({len(a)} != {len(b)})"
        )
