"""Connectivity audits for arbitrary FNNTs."""

from __future__ import annotations

import numpy as np

from repro.topology.fnnt import FNNT
from repro.topology.properties import degree_statistics, path_count_matrix


def connectivity_fraction(topology: FNNT) -> float:
    """Fraction of (input, output) pairs joined by at least one path.

    1.0 means path-connected; random sparse baselines at low density fall
    well below 1.0, which is the failure mode symmetry rules out.
    """
    counts = path_count_matrix(topology).to_dense()
    return float(np.count_nonzero(counts) / counts.size)


def isolated_output_fraction(topology: FNNT) -> float:
    """Fraction of output nodes unreachable from *any* input node."""
    counts = path_count_matrix(topology).to_dense()
    reachable = (counts > 0).any(axis=0)
    return float(1.0 - reachable.mean())


def degree_regularity(topology: FNNT) -> float:
    """A scalar regularity score in [0, 1]: 1 when every layer is in- and out-regular.

    Computed as the mean over layers of
    ``min_degree / max_degree`` for both directions (0 when any degree is
    0, which a valid FNNT forbids anyway).
    """
    stats = degree_statistics(topology)
    scores = []
    for s in stats:
        out_score = s.out_degree_min / s.out_degree_max if s.out_degree_max else 0.0
        in_score = s.in_degree_min / s.in_degree_max if s.in_degree_max else 0.0
        scores.append(0.5 * (out_score + in_score))
    return float(np.mean(scores))


def path_count_dispersion(topology: FNNT) -> float:
    """Coefficient of variation of per-pair path counts (0 for symmetric nets)."""
    counts = path_count_matrix(topology).to_dense().ravel()
    mean = counts.mean()
    if mean == 0:
        return float("inf")
    return float(counts.std() / mean)
