"""Side-by-side topology comparison reports."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.expander import expansion_summary
from repro.core.theory import path_count_spectrum
from repro.topology.fnnt import FNNT
from repro.topology.properties import (
    degree_statistics,
    is_path_connected,
    is_symmetric,
)


@dataclass(frozen=True)
class TopologyReport:
    """Summary statistics of one topology, as reported by the comparison harness."""

    name: str
    layer_sizes: tuple[int, ...]
    num_edges: int
    density: float
    path_connected: bool
    symmetric: bool
    path_count_min: int
    path_count_max: int
    disconnected_pairs: int
    worst_spectral_gap: float
    out_regular: bool

    @property
    def path_count_uniform(self) -> bool:
        """True if every (input, output) pair has the same positive path count."""
        return self.symmetric

    def as_row(self) -> dict[str, object]:
        """Dictionary form used by the text report tables."""
        return {
            "name": self.name,
            "layers": "x".join(str(s) for s in self.layer_sizes),
            "edges": self.num_edges,
            "density": round(self.density, 6),
            "connected": self.path_connected,
            "symmetric": self.symmetric,
            "paths_min": self.path_count_min,
            "paths_max": self.path_count_max,
            "zero_pairs": self.disconnected_pairs,
            "spectral_gap": round(self.worst_spectral_gap, 4),
            "out_regular": self.out_regular,
        }


def topology_report(topology: FNNT) -> TopologyReport:
    """Compute the full comparison report for one topology."""
    spectrum = path_count_spectrum(topology)
    positive_counts = [count for count in spectrum if count > 0]
    disconnected = spectrum.get(0, 0)
    degrees = degree_statistics(topology)
    return TopologyReport(
        name=topology.name,
        layer_sizes=topology.layer_sizes,
        num_edges=topology.num_edges,
        density=topology.density(),
        path_connected=is_path_connected(topology),
        symmetric=is_symmetric(topology),
        path_count_min=min(positive_counts) if positive_counts else 0,
        path_count_max=max(positive_counts) if positive_counts else 0,
        disconnected_pairs=int(disconnected),
        worst_spectral_gap=expansion_summary(topology).worst_gap,
        out_regular=all(stat.out_regular for stat in degrees),
    )


def compare_topologies(topologies: list[FNNT]) -> list[TopologyReport]:
    """Reports for a list of topologies (same order as the input)."""
    return [topology_report(t) for t in topologies]


def density_matched(reports: list[TopologyReport], *, tolerance: float = 0.15) -> bool:
    """True if all reported densities lie within ``tolerance`` (relative) of the first.

    The training comparison (experiment E1) is only meaningful when the
    sparse families being compared have matched parameter budgets; this
    helper is the guard the harness applies before reporting accuracy
    differences.
    """
    if not reports:
        return True
    reference = reports[0].density
    if reference == 0:
        return False
    return all(abs(r.density - reference) / reference <= tolerance for r in reports)
