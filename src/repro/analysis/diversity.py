"""Topology diversity counts.

The paper's abstract claims RadiX-Nets are "much more diverse than X-Net
topologies".  We quantify diversity as the number of distinct admissible
configurations available for a fixed resource envelope:

* for RadiX-Nets with a fixed shared product ``N'`` and ``M`` systems, the
  configurations are the ordered choices of radix lists with product
  ``N'`` (times the choices of a final system whose product divides
  ``N'``), further multiplied by the free choice of dense widths;
* for explicit (Cayley) X-Nets on layers of width ``n``, the
  configurations are the symmetric generator sets of ``Z_n``, and adjacent
  layer widths are forced equal.

These counting functions are exact for the structural part (radix lists /
generator sets); dense-width freedom is reported separately because it is
an infinite family (bounded only by the ``D_i << N'`` guidance).
"""

from __future__ import annotations

import math

from repro.errors import ValidationError
from repro.numeral.factorization import divisors, radix_lists_with_product
from repro.utils.validation import check_positive_int


def count_radixnet_configurations(
    n_prime: int,
    num_systems: int,
    *,
    max_length: int | None = None,
    include_divisor_last_system: bool = True,
) -> int:
    """Number of distinct ``N*`` choices for a RadiX-Net with shared product ``N'``.

    The first ``num_systems - 1`` systems each independently choose any
    ordered radix list with product exactly ``N'``; the last system may
    choose any ordered radix list whose product is any divisor (>= 2) of
    ``N'`` (or exactly ``N'`` when ``include_divisor_last_system`` is
    False).  Dense widths are *not* counted (they add an unbounded factor
    in RadiX-Net's favour).
    """
    n_prime = check_positive_int(n_prime, "n_prime", minimum=2)
    num_systems = check_positive_int(num_systems, "num_systems")
    per_system = len(radix_lists_with_product(n_prime, max_length=max_length))
    if per_system == 0:
        return 0
    if num_systems == 1:
        base = per_system
        return base
    if include_divisor_last_system:
        last_choices = sum(
            len(radix_lists_with_product(q, max_length=max_length))
            for q in divisors(n_prime)
            if q >= 2
        )
    else:
        last_choices = per_system
    return per_system ** (num_systems - 1) * last_choices


def count_explicit_xnet_configurations(width: int, *, max_degree: int | None = None) -> int:
    """Number of distinct symmetric generator-set sizes for a Cayley X-Net layer.

    An explicit X-Linear layer on ``Z_width`` is determined by a symmetric
    generator set; distinct *degrees* (set sizes) from 1 to
    ``min(max_degree, width - 1)`` give structurally distinct layers.  We
    count canonical sets per degree (one per degree, as produced by
    :func:`repro.baselines.cayley.symmetric_generator_set`), which is the
    deterministic choice actually available to the construction -- the
    point being that the count grows linearly in ``width`` while the
    RadiX-Net count grows super-polynomially with the divisor structure of
    ``N'``.
    """
    width = check_positive_int(width, "width", minimum=2)
    limit = width - 1 if max_degree is None else min(max_degree, width - 1)
    if limit < 1:
        raise ValidationError("width must allow at least degree-1 generator sets")
    return limit


def diversity_ratio(n_prime: int, num_systems: int = 2, *, max_length: int | None = None) -> float:
    """RadiX-Net configurations divided by explicit X-Net configurations at width ``N'``.

    A value much greater than 1 substantiates the paper's diversity claim
    for that size.
    """
    radix = count_radixnet_configurations(n_prime, num_systems, max_length=max_length)
    xnet = count_explicit_xnet_configurations(n_prime)
    return radix / xnet


def log_diversity(n_prime: int, num_systems: int = 2) -> float:
    """Natural log of the RadiX-Net configuration count (for plotting growth)."""
    count = count_radixnet_configurations(n_prime, num_systems)
    if count <= 0:
        raise ValidationError("configuration count is zero; nothing to take log of")
    return math.log(count)
