"""Topology analysis and comparison.

Quantifies the paper's qualitative claims:

* RadiX-Nets satisfy symmetry / path-connectedness while baselines in
  general do not (:mod:`repro.analysis.compare` reports path-count spectra
  and connectivity for any topology family side by side);
* RadiX-Nets are "much more diverse" than explicit X-Nets
  (:mod:`repro.analysis.diversity` counts admissible configurations for a
  given layer-width profile);
* expander quality and degree regularity across families
  (:mod:`repro.analysis.connectivity`).
"""

from repro.analysis.compare import TopologyReport, compare_topologies, topology_report
from repro.analysis.diversity import (
    count_radixnet_configurations,
    count_explicit_xnet_configurations,
    diversity_ratio,
)
from repro.analysis.connectivity import (
    connectivity_fraction,
    isolated_output_fraction,
    degree_regularity,
)

__all__ = [
    "TopologyReport",
    "compare_topologies",
    "topology_report",
    "count_radixnet_configurations",
    "count_explicit_xnet_configurations",
    "diversity_ratio",
    "connectivity_fraction",
    "isolated_output_fraction",
    "degree_regularity",
]
