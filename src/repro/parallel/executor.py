"""Process-pool execution with a serial fallback.

The guidance for scientific Python parallelism applies: the work unit must
be coarse enough to amortize process start-up and pickling, and the code
must degrade gracefully where multiprocessing is unavailable (sandboxes,
restricted CI runners).  ``parallel_map`` therefore takes a
``min_chunk_for_parallel`` threshold and silently falls back to the serial
path when the pool cannot be created or the input is small.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

from repro.errors import ValidationError

T = TypeVar("T")
R = TypeVar("R")


def effective_worker_count(requested: int | None = None) -> int:
    """Number of worker processes to use: requested, else ``cpu_count - 1`` (min 1)."""
    if requested is not None:
        if requested < 1:
            raise ValidationError("worker count must be >= 1")
        return int(requested)
    return max(1, (os.cpu_count() or 2) - 1)


def serve_worker_count(requested: int | None = None) -> int:
    """Batcher worker threads for the serve path: requested, else
    ``min(cpu_count, 4)``.

    Unlike :func:`effective_worker_count` (process fan-out over a batch
    workload) this does not reserve a core for the parent: the serve
    front end is an asyncio loop that spends its life parked on sockets,
    and the batcher workers release the GIL inside the kernels.  Capped
    at 4 -- engine steps are memory-bandwidth-bound, so piling every
    core of a large machine onto one queue stops paying for the extra
    coordination well before then.
    """
    if requested is not None:
        if requested < 1:
            raise ValidationError("worker count must be >= 1")
        return int(requested)
    return min(os.cpu_count() or 1, 4)


def serial_map(func: Callable[[T], R], items: Iterable[T]) -> list[R]:
    """Plain serial map returning a list (the fallback path of ``parallel_map``)."""
    return [func(item) for item in items]


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int | None = None,
    min_items_for_parallel: int = 4,
    chunksize: int = 1,
) -> list[R]:
    """Map ``func`` over ``items`` using a process pool when worthwhile.

    Falls back to the serial path when there are fewer than
    ``min_items_for_parallel`` items, when only one worker is available, or
    when the pool cannot be created (``OSError`` / ``PermissionError`` in
    restricted environments).  ``func`` must be picklable (a module-level
    function), as usual for process pools.
    """
    items = list(items)
    worker_count = effective_worker_count(workers)
    if len(items) < max(2, min_items_for_parallel) or worker_count == 1:
        return serial_map(func, items)
    try:
        with ProcessPoolExecutor(max_workers=worker_count) as pool:
            return list(pool.map(func, items, chunksize=max(1, chunksize)))
    except (OSError, PermissionError, RuntimeError):
        return serial_map(func, items)
