"""Tensor-parallel (model-parallel) sharding of the challenge recurrence.

The Graph Challenge recurrence ``Y <- min(max(Y W + b, 0), threshold)``
is column-separable: output neuron ``j`` depends on the *full* activation
frontier ``Y`` but only on column ``j`` of ``W`` (and entry ``j`` of
``b``).  Partitioning each layer by contiguous neuron (column) ranges
therefore yields K independent shard computations per layer whose
horizontally concatenated outputs equal the unsharded result **bit for
bit** -- every output entry is the same floating-point summation over the
same stored entries in the same order, only grouped differently.

This module provides the pieces of that execution mode:

* :class:`ShardLayout` -- the contiguous column ranges (built on
  :func:`repro.parallel.partition.partition_ranges`, so uneven neuron
  counts spread the remainder over the leading shards);
* :func:`slice_csr_columns` / :func:`slice_csr_rows` /
  :func:`hstack_csr` -- canonical CSR slicing and the all-gather
  concatenation (ascending contiguous column blocks keep CSR canonical);
* :func:`shard_layer` / :class:`ShardedLayer` -- one layer's
  ``(weight, weight_t, bias)`` cut into per-shard slices;
* :class:`ShardedComputeStage` -- a drop-in
  :class:`repro.challenge.pipeline.ComputeStage` that advances the batch
  shard by shard (serial transport) or via a worker pool;
* :class:`ShardWorkerPool` + :func:`run_sharded_challenge_pipeline` --
  the process transport: K workers each stream the network from disk
  and keep only their column slice of every layer resident (~1/K of the
  model per process), the parent broadcasts the activation frontier per
  layer and gathers the output blocks.  This generalizes the single
  sidecar of ``repro.challenge.pipeline._iter_process_prefetched`` to a
  pool, reusing its bounded-queue / liveness-check / error-relay idiom.

Sharding changes *where* each column block is computed, never *what* is
computed: policy decisions (dense SpMM vs fused sparse SpGEMM), stats,
and checkpoints are identical to the unsharded pipeline, which is what
makes cross-shard-count resume (K -> 1) safe -- the checkpointed
activation batch is layout-independent.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
from dataclasses import dataclass

import numpy as np

from repro.backends import resolve_backend
from repro.backends.base import SparseBackend
from repro.challenge.inference import (
    DENSE,
    SPARSE,
    ActivationBatch,
    ActivationPolicy,
    DenseActivations,
    SparseActivations,
)
from repro.challenge.pipeline import CheckpointStage, ComputeStage, PipelineState
from repro.errors import SerializationError, ShapeError, ValidationError
from repro.parallel.partition import partition_ranges
from repro.sparse.csr import CSRMatrix


# --------------------------------------------------------------------------- #
# shard layout
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardLayout:
    """Contiguous ``[start, stop)`` output-column ranges covering ``neurons``."""

    neurons: int
    ranges: tuple[tuple[int, int], ...]

    @classmethod
    def balanced(cls, neurons: int, shards: int) -> "ShardLayout":
        """Balanced layout: ranges differ in width by at most one column.

        ``shards`` must be in ``1..neurons`` -- a shard with zero columns
        would contribute nothing and break the all-gather bookkeeping.
        """
        if neurons < 1:
            raise ValidationError(f"neurons must be >= 1, got {neurons}")
        if not 1 <= shards <= neurons:
            raise ValidationError(
                f"shards must be in 1..{neurons} (the neuron count), got {shards}"
            )
        return cls(
            neurons=int(neurons),
            ranges=tuple(partition_ranges(int(neurons), int(shards))),
        )

    @property
    def shards(self) -> int:
        return len(self.ranges)

    @property
    def widths(self) -> list[int]:
        return [stop - start for start, stop in self.ranges]


# --------------------------------------------------------------------------- #
# CSR slicing / all-gather primitives
# --------------------------------------------------------------------------- #
def _check_range(start: int, stop: int, extent: int, axis: str) -> None:
    if not 0 <= start < stop <= extent:
        raise ValidationError(
            f"{axis} range [{start}, {stop}) out of bounds for extent {extent}"
        )


def slice_csr_columns(matrix: CSRMatrix, start: int, stop: int) -> CSRMatrix:
    """The ``[start, stop)`` column block of ``matrix`` as a new CSR matrix.

    Keeps the within-row entry order of the source, so the slice is
    canonical whenever the source is.
    """
    rows, cols = matrix.shape
    _check_range(start, stop, cols, "column")
    mask = (matrix.indices >= start) & (matrix.indices < stop)
    row_ids = np.repeat(np.arange(rows, dtype=np.int64), np.diff(matrix.indptr))
    indptr = np.zeros(rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(row_ids[mask], minlength=rows), out=indptr[1:])
    return CSRMatrix(
        (rows, stop - start), indptr, matrix.indices[mask] - start, matrix.data[mask]
    )


def slice_csr_rows(matrix: CSRMatrix, start: int, stop: int) -> CSRMatrix:
    """The ``[start, stop)`` row block of ``matrix`` (a cheap indptr shift)."""
    rows, cols = matrix.shape
    _check_range(start, stop, rows, "row")
    lo, hi = int(matrix.indptr[start]), int(matrix.indptr[stop])
    return CSRMatrix(
        (stop - start, cols),
        matrix.indptr[start : stop + 1] - lo,
        matrix.indices[lo:hi],
        matrix.data[lo:hi],
    )


def hstack_csr(blocks: list[CSRMatrix]) -> CSRMatrix:
    """Horizontally concatenate CSR blocks (the frontier all-gather).

    All blocks must have the same row count.  Within each output row the
    blocks' entries are laid out left to right with ascending column
    offsets, so concatenating canonical blocks yields a canonical matrix
    -- and concatenating the shard outputs of a layer reproduces the
    unsharded output array-for-array.
    """
    if not blocks:
        raise ValidationError("hstack_csr needs at least one block")
    rows = blocks[0].shape[0]
    for block in blocks:
        if block.shape[0] != rows:
            raise ShapeError(
                f"all blocks must share the row count {rows}, got {block.shape[0]}"
            )
    if len(blocks) == 1:
        return blocks[0]
    widths = [block.shape[1] for block in blocks]
    offsets = np.concatenate(([0], np.cumsum(widths)))
    indptr = np.sum([block.indptr for block in blocks], axis=0, dtype=np.int64)
    total = int(indptr[-1])
    indices = np.empty(total, dtype=np.int64)
    data = np.empty(total, dtype=np.float64)
    placed = np.zeros(rows, dtype=np.int64)
    for offset, block in zip(offsets, blocks):
        counts = np.diff(block.indptr)
        row_ids = np.repeat(np.arange(rows, dtype=np.int64), counts)
        within = np.arange(block.nnz, dtype=np.int64) - np.repeat(
            block.indptr[:-1], counts
        )
        dest = indptr[:-1][row_ids] + placed[row_ids] + within
        indices[dest] = block.indices + offset
        data[dest] = block.data
        placed += counts
    return CSRMatrix((rows, int(offsets[-1])), indptr, indices, data)


# --------------------------------------------------------------------------- #
# a sharded layer
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardedLayer:
    """One layer's ``(weight, weight_t, bias)`` cut into column-range slices.

    ``shards[k]`` holds shard ``k``'s ``(weight_slice, weight_t_slice,
    bias_slice)``; either matrix slice may be ``None`` when the source
    layer lacked that form (mirroring
    :meth:`repro.challenge.pipeline.ComputeStage.advance`).  The summary
    fields carry what the policy/stats bookkeeping needs about the *full*
    layer.
    """

    shards: tuple[tuple[CSRMatrix | None, CSRMatrix | None, np.ndarray], ...]
    in_size: int
    nnz: int
    has_weight: bool
    any_positive_bias: bool


def shard_layer(
    weight: CSRMatrix | None,
    weight_t: CSRMatrix | None,
    bias: np.ndarray,
    layout: ShardLayout,
) -> ShardedLayer:
    """Slice one layer by the layout's column ranges.

    The weight is sliced by output columns, the transposed weight by rows
    (``transpose(slice_cols(W)) == slice_rows(W^T)`` -- canonical CSR is
    unique, so the two routes produce identical arrays), and the bias by
    entries.  Column slicing partitions the stored entries, so the shard
    ``nnz`` values sum to the full layer's.
    """
    ref = weight if weight is not None else weight_t
    if ref is None:
        raise ValidationError("each layer needs a weight or transposed weight")
    out_size = ref.shape[1] if weight is not None else ref.shape[0]
    in_size = ref.shape[0] if weight is not None else ref.shape[1]
    if out_size != layout.neurons:
        raise ShapeError(
            f"shard layout covers {layout.neurons} output neurons, "
            f"layer produces {out_size}"
        )
    bias = np.asarray(bias, dtype=np.float64)
    if bias.shape != (out_size,):
        raise ShapeError(
            f"bias must have shape ({out_size},), got {bias.shape}"
        )
    shards = tuple(
        (
            slice_csr_columns(weight, start, stop) if weight is not None else None,
            slice_csr_rows(weight_t, start, stop) if weight_t is not None else None,
            bias[start:stop],
        )
        for start, stop in layout.ranges
    )
    return ShardedLayer(
        shards=shards,
        in_size=in_size,
        nnz=ref.nnz,
        has_weight=weight is not None,
        any_positive_bias=bool(np.any(bias > 0.0)),
    )


# --------------------------------------------------------------------------- #
# per-shard kernels (exact per-block replicas of the unsharded steps)
# --------------------------------------------------------------------------- #
def _dense_block(
    backend: SparseBackend,
    y: np.ndarray,
    active_rows: np.ndarray,
    weight_t: CSRMatrix,
    bias: np.ndarray,
    threshold: float,
) -> np.ndarray:
    """One shard's column block of ``_dense_layer_step`` (same op sequence)."""
    z = backend.spmm(weight_t, y.T).T
    z[active_rows] += bias
    np.maximum(z, 0.0, out=z)
    np.minimum(z, threshold, out=z)
    return z


def _sparse_block(
    backend: SparseBackend,
    y: CSRMatrix,
    weight: CSRMatrix,
    bias: np.ndarray,
    threshold: float,
) -> CSRMatrix:
    """One shard's column block of the fused sparse step.

    Uses the same kernel selection as
    :meth:`repro.challenge.inference.SparseActivations.step` so sharded
    and unsharded runs hit identical code paths per backend.
    """
    kernel = getattr(backend, "sparse_layer_step", None)
    if kernel is not None:
        return kernel(y, weight, bias, threshold)
    from repro.sparse.ops import sparse_layer_step

    return sparse_layer_step(y, weight, bias, threshold, backend=backend)


def _sharded_batch_step(
    batch: ActivationBatch,
    sharded: ShardedLayer,
    target: str,
    threshold: float,
    backend: SparseBackend,
) -> ActivationBatch:
    """Advance ``batch`` one layer via per-shard blocks + all-gather."""
    if target == SPARSE:
        matrix = batch.matrix
        blocks = [
            _sparse_block(backend, matrix, weight, bias, threshold)
            for weight, _, bias in sharded.shards
        ]
        return SparseActivations(hstack_csr(blocks))
    y = batch.array
    active_rows = y.sum(axis=1) > 0
    columns = []
    for weight, weight_t, bias in sharded.shards:
        if weight_t is None:
            weight_t = backend.transpose(weight)
        columns.append(_dense_block(backend, y, active_rows, weight_t, bias, threshold))
    return DenseActivations(
        columns[0] if len(columns) == 1 else np.concatenate(columns, axis=1)
    )


# --------------------------------------------------------------------------- #
# the sharded compute stage
# --------------------------------------------------------------------------- #
class ShardedComputeStage(ComputeStage):
    """A :class:`~repro.challenge.pipeline.ComputeStage` that computes each
    layer as K column-range shards and all-gathers the blocks.

    Policy decisions, the sparse-path gate, timing, and stats bookkeeping
    are inherited unchanged from the base stage (``_advance``), so a
    sharded run records exactly the stats an unsharded run would --
    sharding only swaps the batch-stepping kernel.
    """

    def __init__(
        self,
        *,
        threshold: float,
        backend: SparseBackend,
        policy: ActivationPolicy,
        record_timing: bool = True,
        layout: ShardLayout,
    ) -> None:
        super().__init__(
            threshold=threshold,
            backend=backend,
            policy=policy,
            record_timing=record_timing,
        )
        self.layout = layout

    def advance(
        self,
        state: PipelineState,
        weight: CSRMatrix | None,
        weight_t: CSRMatrix | None,
        bias: np.ndarray,
    ) -> None:
        """Serial transport: slice the full layer in-process, then step."""
        self.advance_layer(state, shard_layer(weight, weight_t, bias, self.layout))

    def advance_layer(self, state: PipelineState, sharded: ShardedLayer) -> None:
        """Step through one pre-sliced layer (resident-shard callers)."""
        self._advance(
            state,
            in_size=sharded.in_size,
            nnz=sharded.nnz,
            has_weight=sharded.has_weight,
            any_positive_bias=sharded.any_positive_bias,
            step=lambda batch, target: _sharded_batch_step(
                batch, sharded, target, self.threshold, self.backend
            ),
        )

    def advance_with_pool(
        self,
        state: PipelineState,
        pool: "ShardWorkerPool",
        layer_index: int,
        meta: tuple[int, int, bool],
    ) -> None:
        """Process transport: broadcast the frontier, gather shard blocks."""
        in_size, nnz, any_positive_bias = meta

        def step(batch: ActivationBatch, target: str) -> ActivationBatch:
            if target == SPARSE:
                matrix = batch.matrix
                payload = (matrix.shape, matrix.indptr, matrix.indices, matrix.data)
            else:
                payload = batch.array
            blocks = pool.step(layer_index, payload, target)
            if target == SPARSE:
                return SparseActivations(
                    hstack_csr(
                        [
                            CSRMatrix(shape, indptr, indices, data)
                            for shape, indptr, indices, data in blocks
                        ]
                    )
                )
            return DenseActivations(
                blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis=1)
            )

        self._advance(
            state,
            in_size=in_size,
            nnz=nnz,
            has_weight=True,
            any_positive_bias=any_positive_bias,
            step=step,
        )


# --------------------------------------------------------------------------- #
# the process transport: a pool of resident-shard workers
# --------------------------------------------------------------------------- #
def _shard_worker(
    in_queue,
    out_queue,
    directory: str,
    neurons: int,
    start: int,
    stop: int | None,
    use_cache: bool,
    mmap: bool,
    shard_range: tuple[int, int],
    backend: SparseBackend,
    threshold: float,
) -> None:
    """Worker body: load one column slice of every layer, then serve steps.

    The worker streams the full layers (one resident at a time) and keeps
    only its ``(weight_slice, weight_t_slice, bias_slice)`` triples, so
    its steady-state weight memory is ~1/K of the network.  Per layer it
    reports ``(in_size, slice_nnz, any_positive_bias)`` -- the parent
    sums slice nnz across workers to recover the full layer's edge count.
    Protocol mirrors ``_process_layer_producer``: tagged tuples over
    bounded queues, errors relayed (repr fallback when unpicklable), and
    a final ``("done", peak_rss_mb)`` so the parent can report the 1/K
    memory claim from measurements, not arithmetic.
    """
    from repro.challenge.io import iter_challenge_layers
    from repro.utils.timing import peak_rss_mb

    try:
        lo, hi = shard_range
        triples: list[tuple[CSRMatrix, CSRMatrix, np.ndarray]] = []
        metas: list[tuple[int, int, bool]] = []
        for weight, bias in iter_challenge_layers(
            directory, neurons, start=start, use_cache=use_cache, mmap=mmap
        ):
            bias = np.asarray(bias, dtype=np.float64)
            weight_slice = slice_csr_columns(weight, lo, hi)
            triples.append(
                (weight_slice, backend.transpose(weight_slice), bias[lo:hi])
            )
            metas.append(
                (int(weight.shape[0]), weight_slice.nnz, bool(np.any(bias > 0.0)))
            )
            if stop is not None and start + len(triples) >= stop:
                break
        out_queue.put(("loaded", metas))
        while True:
            try:
                message = in_queue.get(timeout=1.0)
            except queue.Empty:
                # a SIGKILLed parent can never send "stop"; don't linger
                # as an orphan holding a model slice
                parent = multiprocessing.parent_process()
                if parent is not None and not parent.is_alive():
                    return
                continue
            if message[0] == "stop":
                break
            _, layer_index, payload, target = message
            weight, weight_t, bias = triples[layer_index - start]
            if target == SPARSE:
                shape, indptr, indices, data = payload
                block = _sparse_block(
                    backend, CSRMatrix(shape, indptr, indices, data),
                    weight, bias, threshold,
                )
                reply = (block.shape, block.indptr, block.indices, block.data)
            else:
                y = payload
                active_rows = y.sum(axis=1) > 0
                reply = _dense_block(backend, y, active_rows, weight_t, bias, threshold)
            out_queue.put(("block", reply))
        out_queue.put(("done", peak_rss_mb()))
    except BaseException as exc:  # noqa: BLE001 - relayed to the parent
        try:
            out_queue.put(("error", exc))
        except Exception:  # exception not picklable: relay its repr
            out_queue.put(("error", RuntimeError(repr(exc))))


class ShardWorkerPool:
    """K resident-shard worker processes + the parent-side orchestration.

    ``Process.start()`` runs eagerly for every worker, so the ``OSError``
    / ``PermissionError`` / ``RuntimeError`` of a restricted environment
    surfaces at construction (callers fall back to the serial transport),
    not mid-run.  Use as a context manager; :meth:`shutdown` performs the
    clean handshake that collects each worker's peak RSS.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        neurons: int,
        layout: ShardLayout,
        *,
        backend: SparseBackend,
        threshold: float,
        start: int = 0,
        stop: int | None = None,
        use_cache: bool = True,
        mmap: bool = True,
    ) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context()
        self.layout = layout
        self.start = int(start)
        self.worker_rss_mb: list[float | None] = []
        self._in_queues = []
        self._out_queues = []
        self._procs = []
        try:
            for shard_range in layout.ranges:
                in_queue = ctx.Queue()
                out_queue = ctx.Queue()
                proc = ctx.Process(
                    target=_shard_worker,
                    args=(
                        in_queue,
                        out_queue,
                        str(directory),
                        int(neurons),
                        int(start),
                        stop,
                        use_cache,
                        mmap,
                        shard_range,
                        backend,
                        float(threshold),
                    ),
                    daemon=True,
                )
                proc.start()
                self._in_queues.append(in_queue)
                self._out_queues.append(out_queue)
                self._procs.append(proc)
        except BaseException:
            self.close()
            raise

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _recv(self, index: int) -> tuple[str, object]:
        import queue as queue_mod

        while True:
            try:
                kind, payload = self._out_queues[index].get(timeout=0.1)
            except queue_mod.Empty:
                if not self._procs[index].is_alive():
                    raise SerializationError(
                        f"shard worker {index} died without a result"
                    ) from None
                continue
            if kind == "error":
                raise payload
            return kind, payload

    def layer_metas(self) -> list[tuple[int, int, bool]]:
        """Gather the per-layer metadata lists and merge them.

        Returns one ``(in_size, full_nnz, any_positive_bias)`` per loaded
        layer; raises if the workers disagree on what they loaded (a
        corrupted source or a worker seeing a different directory state).
        """
        per_worker = []
        for index in range(len(self._procs)):
            kind, payload = self._recv(index)
            if kind != "loaded":
                raise SerializationError(
                    f"shard worker {index}: expected layer metadata, got {kind!r}"
                )
            per_worker.append(payload)
        lengths = {len(metas) for metas in per_worker}
        if len(lengths) != 1:
            raise SerializationError(
                f"shard workers loaded differing layer counts: {sorted(lengths)}"
            )
        merged = []
        for layer_metas in zip(*per_worker):
            in_sizes = {meta[0] for meta in layer_metas}
            flags = {meta[2] for meta in layer_metas}
            if len(in_sizes) != 1 or len(flags) != 1:
                raise SerializationError(
                    "shard workers disagree on layer shape or bias sign"
                )
            merged.append(
                (
                    layer_metas[0][0],
                    int(sum(meta[1] for meta in layer_metas)),
                    layer_metas[0][2],
                )
            )
        return merged

    def step(self, layer_index: int, payload, target: str) -> list:
        """All-gather: broadcast the frontier, collect blocks in shard order."""
        for in_queue in self._in_queues:
            in_queue.put(("step", int(layer_index), payload, target))
        blocks = []
        for index in range(len(self._procs)):
            kind, block = self._recv(index)
            if kind != "block":
                raise SerializationError(
                    f"shard worker {index}: expected a block, got {kind!r}"
                )
            blocks.append(block)
        return blocks

    def shutdown(self) -> None:
        """Clean handshake: stop the workers and collect their peak RSS."""
        for in_queue in self._in_queues:
            in_queue.put(("stop",))
        rss: list[float | None] = []
        for index in range(len(self._procs)):
            try:
                kind, payload = self._recv(index)
            except SerializationError:
                continue
            if kind == "done":
                rss.append(payload)
        self.worker_rss_mb = rss

    def close(self) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)


def run_sharded_challenge_pipeline(
    directory: str | os.PathLike,
    neurons: int,
    state: PipelineState,
    *,
    layout: ShardLayout,
    threshold: float,
    backend: str | SparseBackend | None = None,
    policy: str | ActivationPolicy | None = None,
    record_timing: bool = True,
    checkpoint: CheckpointStage | None = None,
    max_layers: int | None = None,
    use_cache: bool = True,
    mmap: bool = True,
) -> tuple[PipelineState, list[float | None]]:
    """Drive ``state`` over the network at ``directory`` via a worker pool.

    The process-transport counterpart of
    :func:`repro.challenge.pipeline.run_pipeline`: same checkpoint cadence
    (periodic, best-effort on error, finalize at the end), same staged
    ``max_layers`` stop semantics, but the layer weights live sliced
    across K worker processes and the parent only ever holds the
    activation frontier.  Returns the advanced state plus each worker's
    peak RSS (``None`` entries where unavailable).

    Raises ``OSError`` / ``PermissionError`` / ``RuntimeError`` eagerly
    when worker processes cannot be spawned -- callers fall back to the
    serial transport, mirroring ``LoadStage.from_directory``.
    """
    impl = resolve_backend(backend)
    resolved = ActivationPolicy.resolve(policy)
    if max_layers is not None and max_layers <= state.layers_done:
        raise ValidationError(
            f"max_layers ({max_layers}) must exceed the {state.layers_done} "
            "layers already applied"
        )
    stage = ShardedComputeStage(
        threshold=threshold,
        backend=impl,
        policy=resolved,
        record_timing=record_timing,
        layout=layout,
    )
    pool = ShardWorkerPool(
        directory,
        neurons,
        layout,
        backend=impl,
        threshold=threshold,
        start=state.layers_done,
        stop=max_layers,
        use_cache=use_cache,
        mmap=mmap,
    )
    with pool:
        try:
            for meta in pool.layer_metas():
                stage.advance_with_pool(state, pool, state.layers_done, meta)
                if checkpoint is not None:
                    checkpoint.after_layer(state)
                if max_layers is not None and state.layers_done >= max_layers:
                    break
            pool.shutdown()
        except BaseException:
            if checkpoint is not None:
                try:
                    checkpoint.finalize(state)
                except Exception:  # noqa: BLE001 - never mask the original error
                    pass
            raise
        if checkpoint is not None:
            checkpoint.finalize(state)
    return state, pool.worker_rss_mb
