"""Parallel and chunked execution helpers.

Large RadiX-Net instances (Graph Challenge style inference over many
layers, parameter sweeps over many specifications) parallelize naturally
over either the *batch* dimension (inference) or the *configuration*
dimension (sweeps).  This subpackage provides:

* :func:`chunked` / :func:`partition_batch` -- deterministic partitioning
  helpers;
* :func:`parallel_map` -- process-pool map with a serial fallback,
  safe to call from tests and benchmarks (falls back automatically when a
  pool cannot be created, e.g. in restricted sandboxes);
* :func:`parallel_inference` -- batch-parallel Graph Challenge inference;
* :class:`Prefetcher` / :func:`prefetched` -- bounded background-thread
  producer/consumer, the overlap primitive of the staged streaming
  pipelines (:mod:`repro.challenge.pipeline`).
"""

from repro.parallel.executor import (
    effective_worker_count,
    parallel_map,
    serial_map,
    serve_worker_count,
)
from repro.parallel.partition import chunked, partition_batch, balanced_chunk_sizes
from repro.parallel.pipeline import (
    Prefetcher,
    parallel_inference,
    prefetched,
    sweep_specs,
)

__all__ = [
    "parallel_map",
    "serial_map",
    "effective_worker_count",
    "serve_worker_count",
    "chunked",
    "partition_batch",
    "balanced_chunk_sizes",
    "parallel_inference",
    "sweep_specs",
    "Prefetcher",
    "prefetched",
]
