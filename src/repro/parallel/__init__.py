"""Parallel and chunked execution helpers.

Large RadiX-Net instances (Graph Challenge style inference over many
layers, parameter sweeps over many specifications) parallelize naturally
over either the *batch* dimension (inference) or the *configuration*
dimension (sweeps).  This subpackage provides:

* :func:`chunked` / :func:`partition_batch` -- deterministic partitioning
  helpers;
* :func:`parallel_map` -- process-pool map with a serial fallback,
  safe to call from tests and benchmarks (falls back automatically when a
  pool cannot be created, e.g. in restricted sandboxes);
* :func:`parallel_inference` -- batch-parallel Graph Challenge inference;
* :class:`Prefetcher` / :func:`prefetched` -- bounded background-thread
  producer/consumer, the overlap primitive of the staged streaming
  pipelines (:mod:`repro.challenge.pipeline`);
* :mod:`repro.parallel.sharding` -- tensor-parallel column sharding of
  the challenge recurrence (``repro challenge run --shards K``): shard
  layouts, CSR slice/all-gather primitives, the sharded compute stage,
  and the resident-shard worker pool.
"""

from repro.parallel.executor import (
    effective_worker_count,
    parallel_map,
    serial_map,
    serve_worker_count,
)
from repro.parallel.partition import (
    balanced_chunk_sizes,
    chunked,
    partition_batch,
    partition_ranges,
)
from repro.parallel.pipeline import (
    Prefetcher,
    parallel_inference,
    prefetched,
    sweep_specs,
)
from repro.parallel.sharding import (
    ShardedComputeStage,
    ShardedLayer,
    ShardLayout,
    ShardWorkerPool,
    hstack_csr,
    run_sharded_challenge_pipeline,
    shard_layer,
    slice_csr_columns,
    slice_csr_rows,
)

__all__ = [
    "parallel_map",
    "serial_map",
    "effective_worker_count",
    "serve_worker_count",
    "chunked",
    "partition_batch",
    "partition_ranges",
    "balanced_chunk_sizes",
    "parallel_inference",
    "sweep_specs",
    "Prefetcher",
    "prefetched",
    "ShardLayout",
    "ShardedLayer",
    "ShardedComputeStage",
    "ShardWorkerPool",
    "shard_layer",
    "slice_csr_columns",
    "slice_csr_rows",
    "hstack_csr",
    "run_sharded_challenge_pipeline",
]
