"""Deterministic partitioning of work."""

from __future__ import annotations

from collections.abc import Sequence
from typing import TypeVar

import numpy as np

from repro.errors import ValidationError

T = TypeVar("T")


def balanced_chunk_sizes(total: int, parts: int) -> list[int]:
    """Split ``total`` items into ``parts`` contiguous chunks differing by at most one.

    >>> balanced_chunk_sizes(10, 3)
    [4, 3, 3]
    """
    if total < 0:
        raise ValidationError("total must be >= 0")
    if parts <= 0:
        raise ValidationError("parts must be >= 1")
    base, remainder = divmod(total, parts)
    return [base + (1 if i < remainder else 0) for i in range(parts)]


def partition_ranges(total: int, parts: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges covering ``0..total`` in order.

    The remainder of an uneven split is distributed across the *leading*
    parts, so ranges differ in length by at most one and no range is ever
    empty: when ``parts > total`` only ``total`` ranges are produced
    rather than padding with empty trailing shards.

    >>> partition_ranges(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    >>> partition_ranges(2, 4)
    [(0, 1), (1, 2)]
    """
    sizes = balanced_chunk_sizes(total, parts)
    ranges: list[tuple[int, int]] = []
    start = 0
    for size in sizes:
        if size > 0:
            ranges.append((start, start + size))
        start += size
    return ranges


def chunked(items: Sequence[T], parts: int) -> list[list[T]]:
    """Partition a sequence into ``parts`` balanced contiguous chunks (may be empty)."""
    sizes = balanced_chunk_sizes(len(items), parts)
    chunks: list[list[T]] = []
    start = 0
    for size in sizes:
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


def partition_batch(batch: np.ndarray, parts: int) -> list[np.ndarray]:
    """Partition the rows of a 2-D batch into balanced contiguous sub-batches.

    Empty sub-batches are dropped so downstream kernels never see
    zero-row inputs.
    """
    arr = np.asarray(batch)
    if arr.ndim != 2:
        raise ValidationError("batch must be 2-D (samples, features)")
    return [arr[start:stop] for start, stop in partition_ranges(arr.shape[0], parts)]
