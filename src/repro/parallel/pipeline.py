"""Parallel experiment pipelines and bounded producer/consumer primitives.

Coarse-grained parallel workloads used by the benchmarks:

* :func:`parallel_inference` -- Graph Challenge inference with the input
  batch partitioned across workers (the recurrence is independent per
  input row, so this is embarrassingly parallel and reproduces the
  batch-parallel strategy of real challenge submissions);
* :func:`sweep_specs` -- evaluate a function over many RadiX-Net
  specifications (density sweeps, diversity counts) in parallel.

Plus the generic building block of the staged streaming pipelines:

* :class:`Prefetcher` / :func:`prefetched` -- iterate any source on a
  background thread through a bounded queue, so a consumer's compute
  overlaps the producer's I/O (layer ``l+1`` is parsed from disk while
  layer ``l`` multiplies).  This is what
  :class:`repro.challenge.pipeline.LoadStage` builds on.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any, TypeVar

import numpy as np

from repro.backends.base import SparseBackend
from repro.challenge.generator import ChallengeNetwork
from repro.challenge.inference import InferenceResult, engine_for
from repro.errors import ValidationError
from repro.parallel.executor import effective_worker_count, parallel_map

T = TypeVar("T")

_ITEM = "item"
_DONE = "done"
_ERROR = "error"


class Prefetcher(Iterator[T]):
    """Bounded background-thread producer over any iterable.

    A daemon thread pulls items from ``source`` into a queue holding at
    most ``depth`` items, so the consumer's compute overlaps the
    producer's work (disk reads, TSV parsing, layer generation) without
    ever buffering more than ``depth`` items ahead.  Exceptions raised
    by the source are re-raised in the consumer at the point of
    iteration, preserving the serial path's error behaviour.

    Use as a context manager (or call :meth:`close`) so an early-exiting
    consumer stops the producer promptly -- even when the queue is full,
    the producer checks for shutdown between bounded-timeout puts.
    Items already buffered when the source fails are still delivered
    before the error surfaces, exactly as serial iteration would.

    ``poll_interval`` is how often the blocked side re-checks for
    shutdown (producer) or a dead producer (consumer).  It exists for
    tests: timing-sensitive suites inject a small interval so shutdown
    paths resolve in milliseconds instead of racing the default, and
    event-driven tests never need ``time.sleep`` calibration.
    """

    def __init__(
        self, source: Iterable[T], *, depth: int = 2, poll_interval: float = 0.05
    ) -> None:
        if depth < 1:
            raise ValidationError(f"prefetch depth must be >= 1, got {depth}")
        if poll_interval <= 0:
            raise ValidationError(f"poll_interval must be > 0, got {poll_interval}")
        self._poll_interval = float(poll_interval)
        self._queue: queue.Queue = queue.Queue(maxsize=depth)
        self._stop = threading.Event()
        self._finished = False
        self._thread = threading.Thread(
            target=self._produce, args=(iter(source),), daemon=True, name="prefetcher"
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    def _put(self, message: tuple) -> None:
        # bounded-timeout put: a closed consumer never drains the queue,
        # so an unconditional put() could block the producer forever
        while not self._stop.is_set():
            try:
                self._queue.put(message, timeout=self._poll_interval)
                return
            except queue.Full:
                continue

    def _produce(self, source: Iterator[T]) -> None:
        try:
            for item in source:
                if self._stop.is_set():
                    return
                self._put((_ITEM, item))
            self._put((_DONE, None))
        except BaseException as exc:  # noqa: BLE001 - relayed to the consumer
            self._put((_ERROR, exc))

    # ------------------------------------------------------------------ #
    def __iter__(self) -> "Prefetcher[T]":
        return self

    def __next__(self) -> T:
        if self._finished:
            raise StopIteration
        while True:
            try:
                kind, payload = self._queue.get(timeout=self._poll_interval)
            except queue.Empty:
                if not self._thread.is_alive() and self._queue.empty():
                    # producer died without posting (should not happen;
                    # defensive against a killed thread)
                    self._finished = True
                    raise StopIteration from None
                continue
            if kind == _ITEM:
                return payload
            self._finished = True
            if kind == _ERROR:
                raise payload
            raise StopIteration

    def close(self) -> None:
        """Stop the producer thread and discard any buffered items."""
        self._finished = True
        self._stop.set()
        # drain so a producer blocked on a full queue can observe the stop
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "Prefetcher[T]":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def prefetched(source: Iterable[T], depth: int) -> Iterator[T]:
    """``Prefetcher(source, depth)`` when ``depth > 0``, else plain iteration.

    The uniform entry point for optional overlap: ``depth=0`` keeps the
    caller single-threaded (bit-identical scheduling, no queue), any
    positive depth bounds the read-ahead.
    """
    if depth < 0:
        raise ValidationError(f"prefetch depth must be >= 0, got {depth}")
    if depth == 0:
        return iter(source)
    return Prefetcher(source, depth=depth)


def parallel_inference(
    network: ChallengeNetwork,
    inputs: np.ndarray,
    *,
    workers: int | None = None,
    parts: int | None = None,
    backend: str | SparseBackend | None = None,
) -> InferenceResult:
    """Batch-parallel Graph Challenge inference.

    The batch is split into ``parts`` chunks (default: one per worker) and
    each chunk runs the full layer recurrence independently; category
    indices are re-offset into the original batch numbering and merged.
    This is a thin front end over
    :meth:`repro.challenge.inference.InferenceEngine.run`, which owns the
    chunking and the process-pool fan-out (with the usual transparent
    serial fallback of :func:`repro.parallel.executor.parallel_map`).
    """
    batch = np.asarray(inputs, dtype=np.float64)
    worker_count = effective_worker_count(workers)
    # Only an explicit `parts` pins the chunk size; otherwise the engine
    # derives a worker-balanced split itself.
    chunk_size = max(1, batch.shape[0] // parts) if parts and batch.shape[0] else None
    return engine_for(network, backend).run(
        batch,
        chunk_size=chunk_size,
        workers=worker_count,
        record_timing=False,
    )


def sweep_specs(
    evaluate: Callable[[Any], Any],
    specs: Sequence[Any],
    *,
    workers: int | None = None,
) -> list[Any]:
    """Evaluate ``evaluate(spec)`` for every spec, in parallel when worthwhile.

    ``evaluate`` must be a picklable module-level function for the parallel
    path to engage; otherwise the serial fallback is used.
    """
    return parallel_map(evaluate, list(specs), workers=workers)
