"""Parallel experiment pipelines.

Two coarse-grained parallel workloads used by the benchmarks:

* :func:`parallel_inference` -- Graph Challenge inference with the input
  batch partitioned across workers (the recurrence is independent per
  input row, so this is embarrassingly parallel and reproduces the
  batch-parallel strategy of real challenge submissions);
* :func:`sweep_specs` -- evaluate a function over many RadiX-Net
  specifications (density sweeps, diversity counts) in parallel.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.backends.base import SparseBackend
from repro.challenge.generator import ChallengeNetwork
from repro.challenge.inference import InferenceResult, engine_for
from repro.parallel.executor import effective_worker_count, parallel_map


def parallel_inference(
    network: ChallengeNetwork,
    inputs: np.ndarray,
    *,
    workers: int | None = None,
    parts: int | None = None,
    backend: str | SparseBackend | None = None,
) -> InferenceResult:
    """Batch-parallel Graph Challenge inference.

    The batch is split into ``parts`` chunks (default: one per worker) and
    each chunk runs the full layer recurrence independently; category
    indices are re-offset into the original batch numbering and merged.
    This is a thin front end over
    :meth:`repro.challenge.inference.InferenceEngine.run`, which owns the
    chunking and the process-pool fan-out (with the usual transparent
    serial fallback of :func:`repro.parallel.executor.parallel_map`).
    """
    batch = np.asarray(inputs, dtype=np.float64)
    worker_count = effective_worker_count(workers)
    # Only an explicit `parts` pins the chunk size; otherwise the engine
    # derives a worker-balanced split itself.
    chunk_size = max(1, batch.shape[0] // parts) if parts and batch.shape[0] else None
    return engine_for(network, backend).run(
        batch,
        chunk_size=chunk_size,
        workers=worker_count,
        record_timing=False,
    )


def sweep_specs(
    evaluate: Callable[[Any], Any],
    specs: Sequence[Any],
    *,
    workers: int | None = None,
) -> list[Any]:
    """Evaluate ``evaluate(spec)`` for every spec, in parallel when worthwhile.

    ``evaluate`` must be a picklable module-level function for the parallel
    path to engage; otherwise the serial fallback is used.
    """
    return parallel_map(evaluate, list(specs), workers=workers)
