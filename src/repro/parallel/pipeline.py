"""Parallel experiment pipelines.

Two coarse-grained parallel workloads used by the benchmarks:

* :func:`parallel_inference` -- Graph Challenge inference with the input
  batch partitioned across workers (the recurrence is independent per
  input row, so this is embarrassingly parallel and reproduces the
  batch-parallel strategy of real challenge submissions);
* :func:`sweep_specs` -- evaluate a function over many RadiX-Net
  specifications (density sweeps, diversity counts) in parallel.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.challenge.generator import ChallengeNetwork
from repro.challenge.inference import InferenceResult, sparse_dnn_inference
from repro.parallel.executor import parallel_map
from repro.parallel.partition import partition_batch

def _infer_chunk(task: tuple[ChallengeNetwork, np.ndarray]) -> tuple[np.ndarray, np.ndarray, int]:
    """Worker body: run inference on one chunk of the batch.

    The network rides along in the task tuple so the worker is independent
    of process start method (fork or spawn) and of module-level state.
    """
    network, chunk = task
    result = sparse_dnn_inference(network, chunk, record_timing=False)
    return result.activations, result.categories, result.edges_traversed


def parallel_inference(
    network: ChallengeNetwork,
    inputs: np.ndarray,
    *,
    workers: int | None = None,
    parts: int | None = None,
) -> InferenceResult:
    """Batch-parallel Graph Challenge inference.

    The batch is split into ``parts`` chunks (default: one per worker) and
    each chunk runs the full layer recurrence independently; category
    indices are re-offset into the original batch numbering and merged.
    Falls back to serial execution transparently (see
    :func:`repro.parallel.executor.parallel_map`).
    """
    batch = np.asarray(inputs, dtype=np.float64)
    chunk_count = parts if parts is not None else max(1, (workers or 2))
    chunks = partition_batch(batch, chunk_count)
    tasks = [(network, chunk) for chunk in chunks]
    outputs = parallel_map(_infer_chunk, tasks, workers=workers, min_items_for_parallel=2)
    activations = np.concatenate([o[0] for o in outputs], axis=0)
    categories = []
    offset = 0
    edges = 0
    for chunk, (_, cats, chunk_edges) in zip(chunks, outputs):
        categories.append(cats + offset)
        offset += chunk.shape[0]
        edges += chunk_edges
    return InferenceResult(
        activations=activations,
        categories=np.concatenate(categories) if categories else np.empty(0, dtype=np.int64),
        layer_seconds=[],
        edges_traversed=edges,
    )


def sweep_specs(
    evaluate: Callable[[Any], Any],
    specs: Sequence[Any],
    *,
    workers: int | None = None,
) -> list[Any]:
    """Evaluate ``evaluate(spec)`` for every spec, in parallel when worthwhile.

    ``evaluate`` must be a picklable module-level function for the parallel
    path to engage; otherwise the serial fallback is used.
    """
    return parallel_map(evaluate, list(specs), workers=workers)
