"""RadiX-Net: structured sparse matrices and topologies for deep neural networks.

This package is a from-scratch reproduction of

    Robinett & Kepner, "RadiX-Net: Structured Sparse Matrices for Deep
    Neural Networks", 2019 (arXiv:1905.00416).

It provides:

* :mod:`repro.numeral` -- mixed-radix numeral systems (the combinatorial
  substrate of the construction).
* :mod:`repro.sparse` -- a small sparse-matrix kernel library (COO/CSR,
  SpGEMM, Kronecker products, semirings) used by the construction and the
  verification machinery.
* :mod:`repro.backends` -- pluggable sparse-kernel backends behind every
  sparse operation: ``reference`` (pure NumPy/Python oracle), ``scipy``
  (compiled kernels, default), and ``vectorized`` (scatter-free NumPy).
  Select with ``repro.backends.use(...)``, the ``--backend`` CLI flag, or
  the ``REPRO_BACKEND`` environment variable.
* :mod:`repro.topology` -- feedforward neural network topologies (FNNTs),
  their adjacency submatrices, and graph-theoretic properties
  (path-connectedness, symmetry, density).
* :mod:`repro.core` -- the RadiX-Net construction itself: mixed-radix
  topologies, extended mixed-radix concatenation, Kronecker expansion, the
  generator algorithm of the paper's Figure 6, and the density theory of
  equations (4)-(6).
* :mod:`repro.baselines` -- dense topologies, X-Net style random expander
  and explicit Cayley-graph layers, Erdos-Renyi sparse layers, and
  magnitude pruning.
* :mod:`repro.nn` -- a NumPy feedforward neural-network training substrate
  able to train models over arbitrary FNNTs (dense or sparse).
* :mod:`repro.datasets` -- synthetic datasets (procedural MNIST-like
  digits, Gaussian mixtures, spirals, teacher-student).
* :mod:`repro.challenge` -- Graph Challenge style sparse DNN inference.
* :mod:`repro.serve` -- long-lived serving: a resident challenge network
  behind request micro-batching (asyncio TCP front end, JSON-lines
  protocol, bundled load generator).
* :mod:`repro.brain` -- brain-scale sizing of RadiX-Nets.
* :mod:`repro.parallel` -- chunked/multiprocess execution helpers.
* :mod:`repro.analysis` -- topology comparison, diversity and spectra.
* :mod:`repro.viz` -- text-mode rendering of topologies and heatmaps.

Quickstart
----------

>>> from repro import generate_radixnet
>>> net = generate_radixnet([(2, 2), (2, 2)], [1, 2, 2, 2, 1])
>>> net.num_layers
5
>>> net.is_symmetric()
True
"""

from repro._version import __version__
from repro.core.radixnet import (
    RadixNetSpec,
    generate_radixnet,
    generate_extended_mixed_radix,
)
from repro.core.mixed_radix_topology import mixed_radix_topology
from repro.core.density import (
    exact_density,
    approximate_density,
    asymptotic_density,
)
from repro.topology.fnnt import FNNT
from repro.numeral.mixed_radix import MixedRadixSystem

__all__ = [
    "__version__",
    "FNNT",
    "MixedRadixSystem",
    "RadixNetSpec",
    "generate_radixnet",
    "generate_extended_mixed_radix",
    "mixed_radix_topology",
    "exact_density",
    "approximate_density",
    "asymptotic_density",
]
