"""Integer factorization helpers for designing mixed-radix systems.

The RadiX-Net designer (``repro.core.designer``) needs to enumerate radix
lists whose product equals a target ``N'`` (all but the last system must
share a product) or divides it (the last system).  These are purely
combinatorial routines over small integers; they are exact, deterministic,
and independent of NumPy.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from repro.errors import ValidationError
from repro.utils.validation import check_positive_int


def prime_factorization(n: int) -> dict[int, int]:
    """Return the prime factorization of ``n >= 1`` as ``{prime: exponent}``.

    >>> prime_factorization(360)
    {2: 3, 3: 2, 5: 1}
    """
    n = check_positive_int(n, "n", minimum=1)
    factors: dict[int, int] = {}
    remaining = n
    divisor = 2
    while divisor * divisor <= remaining:
        while remaining % divisor == 0:
            factors[divisor] = factors.get(divisor, 0) + 1
            remaining //= divisor
        divisor += 1 if divisor == 2 else 2
    if remaining > 1:
        factors[remaining] = factors.get(remaining, 0) + 1
    return factors


def divisors(n: int, *, proper: bool = False) -> list[int]:
    """Return the sorted divisors of ``n >= 1``.

    With ``proper=True`` the number itself is excluded (but 1 is kept).
    """
    n = check_positive_int(n, "n", minimum=1)
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    result = small + large[::-1]
    if proper and result and result[-1] == n and n != 1:
        result = result[:-1]
    return result


def factorizations_with_length(n: int, length: int, *, min_factor: int = 2) -> Iterator[tuple[int, ...]]:
    """Yield all ordered factorizations of ``n`` into exactly ``length`` factors.

    Every factor is ``>= min_factor``.  Order matters because radix order
    changes the topology (different place values), so ``(2, 3)`` and
    ``(3, 2)`` are distinct results.

    >>> sorted(factorizations_with_length(12, 2))
    [(2, 6), (3, 4), (4, 3), (6, 2)]
    """
    n = check_positive_int(n, "n", minimum=1)
    length = check_positive_int(length, "length", minimum=1)
    min_factor = check_positive_int(min_factor, "min_factor", minimum=1)

    def _recurse(remaining: int, slots: int) -> Iterator[tuple[int, ...]]:
        if slots == 1:
            if remaining >= min_factor:
                yield (remaining,)
            return
        for factor in divisors(remaining):
            if factor < min_factor:
                continue
            if remaining // factor < min_factor ** (slots - 1):
                continue
            for rest in _recurse(remaining // factor, slots - 1):
                yield (factor, *rest)

    yield from _recurse(n, length)


def radix_lists_with_product(product: int, *, max_length: int | None = None) -> list[tuple[int, ...]]:
    """All ordered radix lists (every radix >= 2) whose product is ``product``.

    ``max_length`` bounds the list length; by default it is the maximum
    possible length ``log2(product)``.

    This enumerates the *diversity* of admissible mixed-radix systems for a
    fixed ``N'`` -- the quantity behind the paper's claim that RadiX-Nets
    are "much more diverse" than explicit X-Nets (see ``repro.analysis``).
    """
    product = check_positive_int(product, "product", minimum=2)
    longest = int(math.log2(product))
    if max_length is None:
        max_length = longest
    else:
        max_length = check_positive_int(max_length, "max_length", minimum=1)
    results: list[tuple[int, ...]] = []
    for length in range(1, min(max_length, longest) + 1):
        results.extend(factorizations_with_length(product, length))
    return results


def balanced_radix_list(product: int, length: int) -> tuple[int, ...]:
    """A low-variance radix list of the given ``length`` with the given ``product``.

    Used by the designer to approach the paper's small-variance regime in
    which density ``~ 1 / mu^(d-1)`` (eq. (6)).  Raises if no factorization
    of that length exists.
    """
    best: tuple[int, ...] | None = None
    best_var = math.inf
    for candidate in factorizations_with_length(product, length):
        mean = sum(candidate) / length
        var = sum((c - mean) ** 2 for c in candidate) / length
        if var < best_var or (var == best_var and best is not None and candidate < best):
            best, best_var = candidate, var
    if best is None:
        raise ValidationError(
            f"no radix list of length {length} with product {product} exists"
        )
    return best
