"""Mixed-radix numeral systems.

A mixed-radix numeral system ``N = (N_1, ..., N_L)`` (all radices >= 2)
bijectively represents the integers ``{0, ..., N' - 1}`` where
``N' = prod(N)``, via

    (n_1, ..., n_L)  <->  sum_i n_i * prod_{j<i} N_j .

Mixed-radix systems are the combinatorial substrate of the RadiX-Net
construction (paper Section II).
"""

from repro.numeral.mixed_radix import MixedRadixSystem
from repro.numeral.factorization import (
    divisors,
    prime_factorization,
    factorizations_with_length,
    radix_lists_with_product,
    balanced_radix_list,
)

__all__ = [
    "MixedRadixSystem",
    "divisors",
    "prime_factorization",
    "factorizations_with_length",
    "radix_lists_with_product",
    "balanced_radix_list",
]
