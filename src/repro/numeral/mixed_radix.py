"""The :class:`MixedRadixSystem` class.

Implements the bijection between digit tuples and integers described in the
paper's Mathematical Preliminaries, plus the derived quantities used by the
topology construction (place values, digit extraction, enumeration).

The paper's convention: for ``N = (N_1, ..., N_L)`` the digit ``n_i`` has
place value ``prod_{j<i} N_j`` -- i.e. the *first* radix is the least
significant digit.  We follow that convention exactly so equation (1) of
the paper maps one-to-one onto :meth:`MixedRadixSystem.place_value`.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_radix_list


@dataclass(frozen=True)
class MixedRadixSystem:
    """A mixed-radix numeral system ``N = (N_1, ..., N_L)``.

    Parameters
    ----------
    radices:
        Ordered radices, each an integer ``>= 2``.  ``radices[0]`` is the
        least-significant digit's radix (paper convention).

    Examples
    --------
    >>> mrs = MixedRadixSystem((2, 3, 4))
    >>> mrs.capacity
    24
    >>> mrs.encode((1, 2, 3))
    23
    >>> mrs.decode(23)
    (1, 2, 3)
    """

    radices: tuple[int, ...]

    def __init__(self, radices: Sequence[int]) -> None:
        object.__setattr__(self, "radices", check_radix_list(radices))

    # ------------------------------------------------------------------ #
    # basic quantities
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.radices)

    def __iter__(self) -> Iterator[int]:
        return iter(self.radices)

    def __getitem__(self, index: int) -> int:
        return self.radices[index]

    @property
    def length(self) -> int:
        """Number of radices ``L`` (the paper's per-system depth)."""
        return len(self.radices)

    @property
    def capacity(self) -> int:
        """``N' = prod(N)``: the number of representable integers."""
        return math.prod(self.radices)

    @property
    def mean_radix(self) -> float:
        """Arithmetic mean of the radices (the paper's ``mu`` per system)."""
        return float(np.mean(self.radices))

    @property
    def radix_variance(self) -> float:
        """Population variance of the radices (controls eq. (5)/(6) accuracy)."""
        return float(np.var(self.radices))

    def place_value(self, index: int) -> int:
        """Place value ``nu_i = prod_{j < index} N_j`` of digit ``index`` (0-based).

        This is exactly the exponent step used in the paper's equation (1):
        the adjacency submatrix for radix ``N_i`` is ``sum_j P^{j * nu_i}``.
        """
        if not 0 <= index < len(self.radices):
            raise ValidationError(
                f"digit index must be in [0, {len(self.radices) - 1}], got {index}"
            )
        return math.prod(self.radices[:index])

    def place_values(self) -> tuple[int, ...]:
        """All place values ``(nu_1, ..., nu_L)``."""
        return tuple(self.place_value(i) for i in range(len(self.radices)))

    # ------------------------------------------------------------------ #
    # encode / decode
    # ------------------------------------------------------------------ #
    def encode(self, digits: Sequence[int]) -> int:
        """Map a digit tuple ``(n_1, ..., n_L)`` to its integer value."""
        if len(digits) != len(self.radices):
            raise ValidationError(
                f"expected {len(self.radices)} digits, got {len(digits)}"
            )
        value = 0
        for i, (digit, radix) in enumerate(zip(digits, self.radices)):
            if isinstance(digit, bool) or not isinstance(digit, (int, np.integer)):
                raise ValidationError(f"digit {i} must be an integer, got {digit!r}")
            if not 0 <= int(digit) < radix:
                raise ValidationError(
                    f"digit {i} must be in [0, {radix - 1}], got {digit}"
                )
            value += int(digit) * self.place_value(i)
        return value

    def decode(self, value: int) -> tuple[int, ...]:
        """Map an integer in ``[0, N')`` to its digit tuple."""
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise ValidationError(f"value must be an integer, got {value!r}")
        value = int(value)
        if not 0 <= value < self.capacity:
            raise ValidationError(
                f"value must be in [0, {self.capacity - 1}], got {value}"
            )
        digits = []
        remaining = value
        for radix in self.radices:
            digits.append(remaining % radix)
            remaining //= radix
        return tuple(digits)

    def digit(self, value: int, index: int) -> int:
        """Extract the single digit ``index`` of ``value`` without full decode."""
        return (int(value) // self.place_value(index)) % self.radices[index]

    def enumerate_digits(self) -> Iterator[tuple[int, ...]]:
        """Yield the digit tuples of ``0, 1, ..., N' - 1`` in order."""
        for value in range(self.capacity):
            yield self.decode(value)

    def decode_array(self, values: np.ndarray | Sequence[int]) -> np.ndarray:
        """Vectorized decode: returns an ``(len(values), L)`` digit matrix."""
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            raise ValidationError("values must be a 1-D sequence of integers")
        if arr.size and (arr.min() < 0 or arr.max() >= self.capacity):
            raise ValidationError(
                f"values must lie in [0, {self.capacity - 1}]"
            )
        digits = np.empty((arr.size, len(self.radices)), dtype=np.int64)
        remaining = arr.copy()
        for i, radix in enumerate(self.radices):
            digits[:, i] = remaining % radix
            remaining //= radix
        return digits

    def encode_array(self, digits: np.ndarray) -> np.ndarray:
        """Vectorized encode of an ``(n, L)`` digit matrix to integer values."""
        arr = np.asarray(digits, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != len(self.radices):
            raise ValidationError(
                f"digits must have shape (n, {len(self.radices)}), got {arr.shape}"
            )
        radix_row = np.asarray(self.radices, dtype=np.int64)
        if arr.size and ((arr < 0).any() or (arr >= radix_row).any()):
            raise ValidationError("digit out of range for its radix")
        place = np.asarray(self.place_values(), dtype=np.int64)
        return arr @ place

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def is_uniform(self) -> bool:
        """True if all radices are equal (a fixed-radix system)."""
        return len(set(self.radices)) == 1

    def compatible_with(self, other: "MixedRadixSystem") -> bool:
        """True if both systems have the same capacity ``N'``.

        This is the equality constraint the paper imposes on all but the
        last system in a RadiX-Net specification.
        """
        return self.capacity == other.capacity

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"MixedRadixSystem(radices={self.radices!r})"
